"""Figure 7: fitness to the Mathis square-root model.

Paper setup (Section 4): one TCP connection, 100 s simulation, start-up
ignored; artificial uniform random losses injected at gateway R1 with
the rate varied per experiment; MSS 1000 bytes and RTT fixed at 200 ms;
the receiver ACKs every packet.  The y-axis is the achieved window
``W = BW * RTT / MSS``, compared against the model bound ``C/sqrt(p)``.

We set one-way propagation so that base RTT = 200 ms and keep the
bottleneck fast (10 Mb/s) so queueing does not distort RTT — matching
the model's assumption that RTT is a constant.  Losses switch on when
the ignored start-up phase ends (``loss_start``), so the measured
window over ``[warmup, duration]`` always sees the loss process while
the start-up prefix stays loss-free and shared across the whole grid
(the warm-start contract of :mod:`repro.runner.warmstart`).

Expected shape (paper): both RR and SACK track the bound at small
loss rates and drop below it at high rates, where retransmission losses
and tiny windows force timeouts; RR at least as close to the bound as
SACK.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.models.mathis import MATHIS_C_ACK_EVERY_PACKET, PAPER_C, mathis_window
from repro.net.loss import UniformLoss
from repro.net.packet import set_uid_state
from repro.net.topology import DumbbellParams
from repro.runner import (
    PrefixSpec,
    SnapshotStore,
    SweepRunner,
    TaskSpec,
    fetch_prefix,
    warm_specs,
    warm_start_decision,
)
from repro.sim.rng import RngStream
from repro.viz.ascii import ascii_scatter, format_table


@dataclass
class Figure7Config:
    """Knobs for the Figure 7 harness (defaults = paper values)."""

    variants: Sequence[str] = ("sack", "rr")
    loss_rates: Sequence[float] = (0.005, 0.01, 0.02, 0.03, 0.05, 0.07, 0.1)
    duration: float = 100.0
    warmup: float = 5.0           # "its start-up phase is ignored"
    # Uniform losses switch on at ``loss_start`` (= the ignored start-up
    # phase): the loss-free prefix is then identical for every loss rate
    # and seed, which is what makes the sweep warm-startable per variant.
    # The measured window over [warmup, duration] sees losses throughout.
    loss_start: float = 5.0
    rtt: float = 0.2              # 200 ms
    mss_bytes: int = 1000
    seed: int = 11
    runs_per_point: int = 3       # average a few seeds per point


@dataclass
class Figure7Point:
    variant: str
    loss_rate: float
    window: float                 # measured W = BW*RTT/MSS
    model_window: float           # C/sqrt(p) with the standard C
    throughput_bps: float
    timeouts: float               # mean across runs


@dataclass
class Figure7Result:
    config: Figure7Config
    points: List[Figure7Point] = field(default_factory=list)

    def series(self, variant: str) -> List[Tuple[float, float]]:
        return [
            (point.loss_rate, point.window)
            for point in self.points
            if point.variant == variant
        ]


#: Warm-start cost-model hint: fraction of one cold cell's *work* spent
#: in the loss-free prefix.  Far larger than loss_start/duration (5%):
#: the prefix runs at full window while the lossy remainder runs with a
#: collapsed one, so in event terms the prefix is nearly half the cell
#: (BENCH_experiments.json: ~1.9x warm replay).
WARM_PREFIX_FRACTION = 0.45


def prefix_world(variant: str, config: Figure7Config):
    """Build the single-flow world and run its loss-free start-up phase.

    The prefix depends only on the variant — losses (rate *and* seed)
    switch on at ``loss_start`` via :func:`_measure_from`'s reprogram
    step — so one frozen world serves the whole
    ``loss_rates x runs_per_point`` grid.
    """
    set_uid_state(1)
    # side 1 ms + bottleneck 97 ms + side 1 ms, doubled ≈ 198 ms; plus
    # transmission/ACK time it comes to ~200 ms.
    params = DumbbellParams(
        n_pairs=1,
        bottleneck_bandwidth_bps=10e6,
        bottleneck_delay=0.097,
        side_bandwidth_bps=100e6,
        buffer_packets=200,
    )
    tcp_config = TcpConfig(receiver_window=200, initial_ssthresh=100.0)
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=None)],
        params=params,
        default_config=tcp_config,
    )
    scenario.sim.run(until=min(config.loss_start, config.duration))
    return scenario


def prefix_spec(variant: str, config: Figure7Config) -> PrefixSpec:
    return PrefixSpec(
        fn="repro.experiments.figure7:prefix_world",
        args=(variant, config),
        label=f"fig7 warm prefix {variant}",
    )


def _measure_from(scenario, loss_rate: float, seed: int, config: Figure7Config):
    """Reprogram the cell's losses onto a prefix world and finish it."""
    # Stream name excludes the variant so RR and SACK face the same
    # loss realization per seed (paired comparison).
    rng = RngStream(seed, f"fig7-{loss_rate}")
    scenario.dumbbell.forward_link.loss = UniformLoss(loss_rate, rng)
    scenario.sim.run(until=config.duration)
    sender, stats = scenario.flow(1)
    acked = stats.acked_at(config.duration) - stats.acked_at(config.warmup)
    bw_bps = acked * config.mss_bytes * 8.0 / (config.duration - config.warmup)
    window = bw_bps * config.rtt / (config.mss_bytes * 8.0)
    return window, bw_bps, sender.timeouts


def _measure(variant: str, loss_rate: float, seed: int, config: Figure7Config):
    return _measure_from(prefix_world(variant, config), loss_rate, seed, config)


def _reduce_point(variant, loss_rate, measurements) -> Figure7Point:
    windows, bws, timeouts = zip(*measurements)
    n = len(windows)
    return Figure7Point(
        variant=variant,
        loss_rate=loss_rate,
        window=sum(windows) / n,
        model_window=mathis_window(loss_rate),
        throughput_bps=sum(bws) / n,
        timeouts=sum(timeouts) / n,
    )


def run_point(variant: str, loss_rate: float, config: Figure7Config) -> Figure7Point:
    """Average ``runs_per_point`` seeds for one (variant, p) point."""
    measurements = [
        _measure(variant, loss_rate, config.seed + run, config)
        for run in range(config.runs_per_point)
    ]
    return _reduce_point(variant, loss_rate, measurements)


def run_point_from_snapshot(
    digest: str,
    variant: str,
    loss_rate: float,
    config: Figure7Config,
    store_root: Optional[str] = None,
) -> Figure7Point:
    """One (variant, p) point with every run restored from the frozen
    loss-free prefix instead of re-simulating start-up."""
    snapshot = fetch_prefix(digest, store_root)
    measurements = [
        _measure_from(
            snapshot.restore(verify=False), loss_rate, config.seed + run, config
        )
        for run in range(config.runs_per_point)
    ]
    return _reduce_point(variant, loss_rate, measurements)


def run_figure7(
    config: Optional[Figure7Config] = None,
    runner: Optional[SweepRunner] = None,
    warm_start: bool = False,
    store: Optional[SnapshotStore] = None,
    manifest: Optional["RunManifest"] = None,
) -> Figure7Result:
    """Regenerate Figure 7's sweep.

    With ``warm_start`` the loss-free start-up phase is simulated once
    per variant and all ``loss_rates x runs_per_point`` cells fork the
    frozen world — bit-identical rows, one prefix per variant for the
    whole grid.
    """
    config = config or Figure7Config()
    runner = runner or SweepRunner()
    result = Figure7Result(config=config)
    if manifest is not None:
        manifest.describe_harness(
            "fig7", config=config, seed=config.seed, warm_start=warm_start
        )
    cells = [
        (variant, loss_rate)
        for variant in config.variants
        for loss_rate in config.loss_rates
    ]
    prefix_for = lambda cell: prefix_spec(cell[0], config)  # noqa: E731
    if warm_start:
        store = store or SnapshotStore()
        if warm_start != "force":
            decision = warm_start_decision(
                cells, prefix_for, WARM_PREFIX_FRACTION, store
            )
            if not decision.use_warm:
                if manifest is not None:
                    manifest.note_warm_start_skipped(decision.reason)
                warm_start = False
    if warm_start:
        store_arg = str(store.root)
        specs = warm_specs(
            cells,
            prefix_for=prefix_for,
            spec_for=lambda cell, digest: TaskSpec(
                fn="repro.experiments.figure7:run_point_from_snapshot",
                args=(digest, cell[0], cell[1], config, store_arg),
                label=f"fig7 {cell[0]}/p={cell[1]} (warm)",
            ),
            store=store,
            runner=runner,
        )
        if manifest is not None:
            manifest.note_warm_start(store)
    else:
        specs = [
            TaskSpec(
                fn="repro.experiments.figure7:run_point",
                args=(variant, loss_rate, config),
                label=f"fig7 {variant}/p={loss_rate}",
            )
            for variant, loss_rate in cells
        ]
    result.points.extend(runner.map(specs))
    return result


def format_report(result: Figure7Result, plot: bool = True) -> str:
    config = result.config
    lines = [
        "Figure 7 — fitness to the Mathis square-root model",
        f"(single flow, uniform loss, RTT={config.rtt * 1000:.0f} ms,"
        f" MSS={config.mss_bytes} B, {config.duration:.0f}s runs)",
        "",
    ]
    rows = []
    for loss_rate in config.loss_rates:
        row: List[object] = [f"{loss_rate:.3f}", f"{mathis_window(loss_rate):.2f}"]
        for variant in config.variants:
            point = next(
                p for p in result.points
                if p.variant == variant and p.loss_rate == loss_rate
            )
            row.append(f"{point.window:.2f}")
            row.append(f"{point.timeouts:.1f}")
        rows.append(row)
    headers = ["p", f"model C={MATHIS_C_ACK_EVERY_PACKET:.2f}"]
    for variant in config.variants:
        headers += [f"{variant} W", f"{variant} RTOs"]
    lines.append(format_table(headers, rows))
    lines.append("")
    # Fit the effective constant on the low-loss half of the sweep,
    # where the timeout-free model assumption holds.
    from repro.models.fit import estimate_mathis_c

    low_rates = [p for p in config.loss_rates if p <= sorted(config.loss_rates)[len(config.loss_rates) // 2]]
    for variant in config.variants:
        points = [(p, w) for p, w in result.series(variant) if p in low_rates]
        if points:
            c_hat = estimate_mathis_c(points)
            lines.append(
                f"fitted C for {variant} over p <= {max(low_rates)}: {c_hat:.2f}"
                f" (theory {MATHIS_C_ACK_EVERY_PACKET:.2f})"
            )
    lines.append(
        f"(the paper plots the bound with C={PAPER_C:.0f}; with that constant every"
        " measured point sits below the bound, as in the paper's Figure 7)"
    )
    if plot:
        series = {"model": [(p, mathis_window(p)) for p in config.loss_rates]}
        for variant in config.variants:
            series[variant] = result.series(variant)
        lines.append("")
        lines.append(
            ascii_scatter(
                series,
                x_label="loss rate p",
                y_label="window = BW*RTT/MSS (packets)",
                title="window vs loss rate",
                height=16,
            )
        )
    lines.append("")
    lines.append(
        "paper shape: both schemes track the bound at small p and fall below it"
        " at large p (timeouts); RR comparable to SACK."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI glue
    print(format_report(run_figure7()))


if __name__ == "__main__":  # pragma: no cover
    main()
