"""Figure 6: sequence-number dynamics under RED gateways.

Paper setup (Section 3.3, Table 4): the dumbbell with RED on the
bottleneck (min_th 5, max_th 20, max_p 0.02, w_q 0.002, buffer 25),
ten TCP flows sharing 0.8 Mb/s — the first five start at t=0, then one
more every 0.5 s, all with infinite data; 6 s of simulation, heavy
congestion.  All flows run the same recovery scheme; flow 1 is plotted.

The harness returns flow 1's send/retransmit/ACK series (the paper's
"standard TCP sequence number plots") and summary numbers: the final
cumulatively-acknowledged packet (the headline of Fig. 6 — higher means
more delivered in the same 6 seconds), effective throughput, timeouts
and the longest ACK stall.

Expected shape (paper): RR finishes highest, SACK close, New-Reno far
behind with a visible stall ending in a coarse timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.packet import set_uid_state
from repro.sim.engine import Simulator
from repro.metrics.timeseries import SequenceTrace, SequenceTracer
from repro.metrics.throughput import effective_throughput_bps
from repro.net.red import RedParams, RedQueue
from repro.net.topology import DumbbellParams
from repro.runner import (
    PrefixSpec,
    SnapshotStore,
    SweepRunner,
    TaskSpec,
    load_prefix,
    warm_specs,
    warm_start_decision,
)
from repro.sim.rng import RngStream
from repro.viz.ascii import ascii_scatter, format_table


@dataclass
class Figure6Config:
    """Knobs for the Figure 6 harness (defaults = paper values)."""

    variants: Sequence[str] = ("newreno", "sack", "rr")
    n_flows: int = 10
    initial_flows: int = 5          # start at t=0
    stagger_seconds: float = 0.5    # "a new TCP flow starts every 0.5 second"
    duration: float = 6.0
    # Warm-start capture point: all ten flows are up by 2.5 s, so 3 s
    # freezes the fully-populated system with congestion still ahead.
    prefix_seconds: float = 3.0
    red: RedParams = field(default_factory=lambda: RedParams())
    seed: int = 7


@dataclass
class Figure6FlowResult:
    variant: str
    final_ack: int
    throughput_bps: float
    timeouts: int
    retransmits: int
    longest_stall: float
    trace: SequenceTrace
    # fleet-wide aggregates across all ten flows (extension):
    fleet_goodput_bps: float = 0.0
    fleet_jain: float = 0.0
    fleet_timeouts: int = 0


@dataclass
class Figure6Result:
    config: Figure6Config
    flows: Dict[str, Figure6FlowResult] = field(default_factory=dict)


def prefix_world(variant: str, config: Figure6Config):
    """Build the ten-flow RED scenario and advance it to the warm-start
    capture point (``prefix_seconds``).

    Figure 6's cells have nothing to reprogram — the variant is baked
    into every flow — so the prefix is simply the first few seconds of
    the run, shared between repeated sweeps (and the cold path, which
    continues the same world in-process).
    """
    set_uid_state(1)
    rng = RngStream(config.seed, f"red-{variant}")
    flows = []
    for i in range(config.n_flows):
        start = 0.0 if i < config.initial_flows else (
            (i - config.initial_flows + 1) * config.stagger_seconds
        )
        flows.append(FlowSpec(variant=variant, start_time=start, amount_packets=None))

    sim = Simulator()

    def red_factory(name: str) -> RedQueue:
        return RedQueue(sim, config.red, rng.substream(name), name=name)

    scenario = build_dumbbell_scenario(
        flows=flows,
        params=DumbbellParams(n_pairs=config.n_flows, buffer_packets=config.red.limit),
        bottleneck_queue_factory=red_factory,
        sim=sim,
    )
    scenario.sim.run(until=min(config.prefix_seconds, config.duration))
    return scenario


def prefix_spec(variant: str, config: Figure6Config) -> PrefixSpec:
    return PrefixSpec(
        fn="repro.experiments.figure6:prefix_world",
        args=(variant, config),
        label=f"fig6 warm prefix {variant}",
    )


def _finish(scenario, variant: str, config: Figure6Config) -> Figure6FlowResult:
    """Run the remainder of a (possibly warm-started) cell and reduce it
    to flow 1's dynamics."""
    scenario.sim.run(until=config.duration)
    sender, stats = scenario.flow(1)
    tracer = SequenceTracer(stats)
    stalls = tracer.stall_periods(threshold=0.5, t_end=config.duration)
    from repro.metrics.fairness import jain_index

    fleet_acks = [scenario.stats[i].final_ack for i in scenario.stats]
    return Figure6FlowResult(
        variant=variant,
        final_ack=stats.final_ack,
        throughput_bps=effective_throughput_bps(stats, until=config.duration),
        timeouts=sender.timeouts,
        retransmits=sender.retransmits,
        longest_stall=max((b - a for a, b in stalls), default=0.0),
        trace=tracer.trace(),
        fleet_goodput_bps=sum(fleet_acks) * 8000.0 / config.duration,
        fleet_jain=jain_index(fleet_acks),
        fleet_timeouts=sum(s.timeouts for s in scenario.senders.values()),
    )


def run_variant(variant: str, config: Figure6Config) -> Figure6FlowResult:
    """Run the ten-flow RED scenario with every flow using ``variant``
    and return flow 1's dynamics."""
    return _finish(prefix_world(variant, config), variant, config)


def run_variant_from_snapshot(
    digest: str,
    variant: str,
    config: Figure6Config,
    store_root: Optional[str] = None,
) -> Figure6FlowResult:
    """Run one cell warm-started from the stored prefix snapshot."""
    scenario = load_prefix(digest, store_root, verify=False)
    return _finish(scenario, variant, config)


def run_figure6(
    config: Optional[Figure6Config] = None,
    runner: Optional[SweepRunner] = None,
    warm_start: bool = False,
    store: Optional[SnapshotStore] = None,
    manifest: Optional["RunManifest"] = None,
) -> Figure6Result:
    """Regenerate all three panels of Figure 6.

    With ``warm_start`` each variant's first ``prefix_seconds`` are
    simulated once per code version (then replayed from the store) and
    the cells continue from the frozen worlds — bit-identical rows.
    ``warm_start=True`` consults the warm-start cost model first (one
    cell per variant means a first pass can never win — the capture IS
    the prefix run plus a snapshot round-trip); ``warm_start="force"``
    bypasses it, which is how the investment pass that later replays
    amortize gets made.
    """
    config = config or Figure6Config()
    runner = runner or SweepRunner()
    result = Figure6Result(config=config)
    if manifest is not None:
        manifest.describe_harness(
            "fig6", config=config, seed=config.seed, warm_start=warm_start
        )
    prefix_for = lambda variant: prefix_spec(variant, config)  # noqa: E731
    if warm_start:
        store = store or SnapshotStore()
        if warm_start != "force":
            # Hint: the prefix is exactly the first prefix_seconds of a
            # duration-second run.
            fraction = min(config.prefix_seconds, config.duration) / config.duration
            decision = warm_start_decision(
                list(config.variants), prefix_for, fraction, store
            )
            if not decision.use_warm:
                if manifest is not None:
                    manifest.note_warm_start_skipped(decision.reason)
                warm_start = False
    if warm_start:
        store_arg = str(store.root)
        specs = warm_specs(
            list(config.variants),
            prefix_for=prefix_for,
            spec_for=lambda variant, digest: TaskSpec(
                fn="repro.experiments.figure6:run_variant_from_snapshot",
                args=(digest, variant, config, store_arg),
                label=f"fig6 {variant} (warm)",
            ),
            store=store,
            runner=runner,
        )
        if manifest is not None:
            manifest.note_warm_start(store)
    else:
        specs = [
            TaskSpec(
                fn="repro.experiments.figure6:run_variant",
                args=(variant, config),
                label=f"fig6 {variant}",
            )
            for variant in config.variants
        ]
    for variant, flow in zip(config.variants, runner.map(specs)):
        result.flows[variant] = flow
    return result


def format_report(result: Figure6Result, plots: bool = True) -> str:
    lines = [
        "Figure 6 — sequence-number dynamics under RED gateways",
        f"(10 flows sharing 0.8 Mb/s, RED min=5 max=20 max_p=0.02 w_q=0.002,"
        f" {result.config.duration:.0f}s; flow 1 shown)",
        "",
    ]
    rows = []
    for variant, flow in result.flows.items():
        rows.append(
            [
                variant,
                flow.final_ack,
                f"{flow.throughput_bps / 1000:.1f}",
                flow.timeouts,
                flow.retransmits,
                f"{flow.longest_stall:.2f}",
            ]
        )
    lines.append(
        format_table(
            ["scheme", "final pkt", "kbps", "RTOs", "rtx", "longest stall s"], rows
        )
    )
    lines.append("")
    fleet_rows = [
        [
            variant,
            f"{flow.fleet_goodput_bps / 1000:.0f}",
            f"{flow.fleet_jain:.3f}",
            flow.fleet_timeouts,
        ]
        for variant, flow in result.flows.items()
    ]
    lines.append("fleet-wide (all 10 flows):")
    lines.append(
        format_table(["scheme", "fleet kbps", "Jain", "fleet RTOs"], fleet_rows)
    )
    if plots:
        for variant, flow in result.flows.items():
            lines.append("")
            lines.append(
                ascii_scatter(
                    {
                        "send": flow.trace.sends,
                        "rtx": flow.trace.retransmits,
                        "ack": flow.trace.acks,
                    },
                    x_label="time (s)",
                    y_label="packet number",
                    title=f"--- {variant} (flow 1) ---",
                    height=16,
                )
            )
    lines.append("")
    lines.append("paper shape: RR highest final packet; New-Reno stalls into a timeout.")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI glue
    print(format_report(run_figure6()))


if __name__ == "__main__":  # pragma: no cover
    main()
