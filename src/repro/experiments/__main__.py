"""``python -m repro.experiments`` delegates to the CLI."""

import sys

from repro.experiments.cli import main

sys.exit(main())
