"""The ``manyflow`` harness: scenes vs. the mean-field RED oracle.

Sweeps flow count x RED ``max_p`` over generated scenes (default: the
generalized dumbbell, bandwidth scaled with the flow count so the
per-flow share stays in the fast-recovery regime) and compares each
cell's *measured* bottleneck behaviour — mean queue occupancy and
per-packet drop probability over the post-warmup window — against the
McDonald-Reynier mean-field fixed point computed by
:mod:`repro.models.meanfield`.  The pass/fail verdict of every oracle
cell is recorded in the run manifest (``oracle`` field), so a run
doesn't just finish: it says whether the simulator still agrees with
the analytic model at scales no golden digest covers.

Non-dumbbell families (``--scene parkinglot`` / ``fattree`` / ``wan``)
run the same sweep and measurement on their first designated
bottleneck but skip the verdict — the single-queue fixed point does
not describe multi-bottleneck systems (docs/SCENARIOS.md).

Warm starts mirror figure6: a cell's prefix is its own first
``warmup`` seconds (measurement starts at the capture point, so warm
and cold cells measure identical windows), shared across repeated
sweeps through the snapshot store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import TcpConfig
from repro.metrics.queuemon import QueueMonitor
from repro.models.meanfield import (
    MeanFieldParams,
    MeanFieldPrediction,
    OracleVerdict,
    meanfield_fixed_point,
    oracle_verdict,
)
from repro.net.parkinglot import ParkingLotParams
from repro.net.red import RedParams
from repro.net.topology import DumbbellParams
from repro.runner import (
    PrefixSpec,
    SnapshotStore,
    SweepRunner,
    TaskSpec,
    load_prefix,
    warm_specs,
    warm_start_decision,
)
from repro.scenes import ArrivalSpec, FlowPopulation, Scene, SceneSpec, build_scene
from repro.scenes.registry import default_topology
from repro.viz.ascii import format_table

#: Data-packet size every scene connection uses (TcpConfig default).
_MSS_BYTES = TcpConfig().mss_bytes
_MAX_WINDOW = float(TcpConfig().receiver_window)


@dataclass
class ManyflowConfig:
    """Knobs for the manyflow sweep.

    The RED thresholds are wider than the paper's Table 4 (the oracle
    wants the fixed point on the early-drop ramp, not pinned to the
    forced-drop cliff) and the bottleneck bandwidth scales with the
    flow count: each flow gets ``bandwidth_per_flow_bps`` of fair
    share, keeping the per-flow window around 8-10 packets at any N —
    big enough for fast recovery, small enough to congest.
    """

    family: str = "dumbbell"
    flow_counts: Sequence[int] = (25, 50, 100)
    max_ps: Sequence[float] = (0.02, 0.1)
    bandwidth_per_flow_bps: float = 800_000.0
    variant: str = "rr"
    duration: float = 20.0
    #: Measurement starts here; also the warm-start capture point.
    warmup: float = 5.0
    red_min_th: float = 10.0
    red_max_th: float = 40.0
    red_weight: float = 0.002
    red_limit: int = 120
    start_jitter: float = 0.5
    queue_sample_period: float = 0.005
    # CLI --delayed-ack / --ecn: the (previously dead) TcpConfig knobs,
    # carried inside each cell's SceneSpec so they participate in the
    # content address.  With ECN the RED bottlenecks mark instead of
    # early-dropping and the oracle compares the fixed point against
    # the *congestion-signal* probability (marks + drops).
    delayed_ack: bool = False
    ecn: bool = False
    seed: int = 21


@dataclass
class ManyflowCellResult:
    """One (flow count, max_p) cell: measurement + oracle comparison."""

    label: str
    n_flows: int
    max_p: float
    bandwidth_bps: float
    events: int
    measured_queue: float
    measured_loss: float
    goodput_bps: float
    utilization: float
    prediction: Optional[MeanFieldPrediction] = None
    verdict: Optional[OracleVerdict] = None


@dataclass
class ManyflowResult:
    config: ManyflowConfig
    cells: List[ManyflowCellResult] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        """Every oracle-checked cell within tolerance (vacuously true
        for families without an oracle)."""
        return all(c.verdict.passed for c in self.cells if c.verdict is not None)


def cell_spec(n_flows: int, max_p: float, config: ManyflowConfig) -> SceneSpec:
    """The content-addressed scene one sweep cell runs.

    RED thresholds and the buffer scale linearly with the population
    past 25 flows (the config values are the <= 25-flow baseline).
    This is the McDonald-Reynier scaling regime: the mean-field limit
    holds when the buffer grows with N, and with fixed thresholds a
    thousand-flow cell would park ~1% of its bandwidth-delay product
    in the RED band — aggregate burst noise then swamps [min_th,
    max_th] and overflow drops, not the RED ramp, set the loss rate.
    """
    scale = max(1.0, n_flows / 25.0)
    limit = int(round(config.red_limit * scale))
    red = RedParams(
        min_th=config.red_min_th * scale,
        max_th=config.red_max_th * scale,
        max_p=max_p,
        weight=config.red_weight,
        limit=limit,
        ecn=config.ecn,
    )
    tcp = None
    if config.delayed_ack or config.ecn:
        tcp = TcpConfig(delayed_ack=config.delayed_ack, ecn_enabled=config.ecn)
    topology = None
    if config.family == "dumbbell":
        topology = DumbbellParams(
            n_pairs=n_flows,
            bottleneck_bandwidth_bps=n_flows * config.bandwidth_per_flow_bps,
            buffer_packets=limit,
        )
    elif config.family == "parkinglot":
        # Flows round-robin over 1 long + n_hops cross pairs, so each
        # hop carries roughly half the population; give it that much
        # fair-share bandwidth (and sides fat enough to stay out of
        # the way — every long-path flow shares one access link).
        per_hop = max(1, n_flows // 2)
        topology = ParkingLotParams(
            bottleneck_bandwidth_bps=per_hop * config.bandwidth_per_flow_bps,
            side_bandwidth_bps=max(
                10_000_000.0, n_flows * config.bandwidth_per_flow_bps
            ),
            buffer_packets=limit,
        )
    return SceneSpec(
        family=config.family,
        topology=topology,
        flows=FlowPopulation(count=n_flows, variant=config.variant),
        arrivals=ArrivalSpec(process="jitter", jitter=config.start_jitter),
        red=red,
        tcp=tcp,
        seed=config.seed,
        duration=config.duration,
    )


def _cell_bandwidth(spec: SceneSpec) -> float:
    """The swept bottleneck's bandwidth, whatever the family calls it."""
    topo = spec.topology if spec.topology is not None else default_topology(spec.family)
    for attr in (
        "bottleneck_bandwidth_bps",
        "fabric_bandwidth_bps",
        "core_bandwidth_bps",
    ):
        value = getattr(topo, attr, None)
        if value is not None:
            return float(value)
    raise AttributeError(f"{type(topo).__name__} declares no bottleneck bandwidth")


def prefix_world(spec: SceneSpec) -> Scene:
    """Build a cell's scene and advance it to the warm-start capture
    point (the measurement window's start, carried in the spec via
    ``ManyflowConfig.warmup`` — see :func:`cell_spec`'s caller)."""
    scene = build_scene(spec)
    scene.sim.run(until=min(_warmup_of(spec), spec.duration))
    return scene


def _warmup_of(spec: SceneSpec) -> float:
    # The warmup rides in the spec as a fixed fraction of the duration
    # so a prefix digest depends only on the spec itself.
    return spec.duration * WARMUP_FRACTION


#: Fraction of a scene's duration simulated before measurement starts
#: (flows ramp out of slow start; the RED average reaches steady state).
WARMUP_FRACTION = 0.25


def prefix_spec(spec: SceneSpec) -> PrefixSpec:
    return PrefixSpec(
        fn="repro.experiments.manyflow:prefix_world",
        args=(spec,),
        label=f"manyflow prefix {spec.family} n={spec.flows.count}",
    )


def _finish(scene: Scene, label: str, config: ManyflowConfig) -> ManyflowCellResult:
    """Measure the post-warmup window of a (possibly warm-started)
    cell and compare against the fixed point where one applies."""
    spec = scene.spec
    queue = (scene.oracle_link or scene.bottlenecks[0]).queue
    base_drops, base_enqueues = queue.drops, queue.enqueues
    # With ECN the RED feedback arrives as marks, not early drops; the
    # fixed point describes the congestion-signal probability, so marks
    # count alongside drops.
    base_marks = getattr(queue, "ecn_marks", 0)
    base_acks = {fid: s.final_ack for fid, s in scene.stats.items()}
    window_start = scene.sim.now
    monitor = QueueMonitor(
        scene.sim, queue, period=config.queue_sample_period, start_time=window_start
    )
    scene.watchdog()
    scene.sim.run(until=spec.duration)

    window = max(spec.duration - window_start, 1e-9)
    drops = queue.drops - base_drops
    enqueues = queue.enqueues - base_enqueues
    signals = drops + getattr(queue, "ecn_marks", 0) - base_marks
    offered = drops + enqueues
    measured_loss = signals / offered if offered else 0.0
    measured_queue = monitor.mean_occupancy()
    acked = sum(s.final_ack - base_acks[fid] for fid, s in scene.stats.items())
    bandwidth = _cell_bandwidth(spec)
    goodput = acked * _MSS_BYTES * 8.0 / window

    # Aggregate goodput over one hop's bandwidth only means something
    # when that hop carries every flow; multi-bottleneck families get
    # the measured queue's busy fraction instead.
    utilization = (
        goodput / bandwidth
        if scene.oracle_link is not None and bandwidth
        else monitor.utilisation_proxy()
    )
    result = ManyflowCellResult(
        label=label,
        n_flows=spec.flows.count,
        max_p=spec.red.max_p if spec.red else 0.0,
        bandwidth_bps=bandwidth,
        events=scene.sim.events_processed,
        measured_queue=measured_queue,
        measured_loss=measured_loss,
        goodput_bps=goodput,
        utilization=utilization,
    )
    if scene.oracle_link is not None and spec.red is not None:
        prediction = meanfield_fixed_point(
            MeanFieldParams(
                n_flows=spec.flows.count,
                bandwidth_bps=bandwidth,
                base_rtt=scene.base_rtt,
                red=spec.red,
                mss_bytes=_MSS_BYTES,
                max_window=_MAX_WINDOW,
            )
        )
        result.prediction = prediction
        result.verdict = oracle_verdict(prediction, measured_queue, measured_loss)
    return result


def run_cell(spec: SceneSpec, label: str, config: ManyflowConfig) -> ManyflowCellResult:
    """Cold path: build, warm up and measure one cell."""
    return _finish(prefix_world(spec), label, config)


def run_cell_from_snapshot(
    digest: str,
    spec: SceneSpec,
    label: str,
    config: ManyflowConfig,
    store_root: Optional[str] = None,
) -> ManyflowCellResult:
    """Warm path: continue one cell from its stored prefix snapshot."""
    return _finish(load_prefix(digest, store_root, verify=False), label, config)


def run_manyflow(
    config: Optional[ManyflowConfig] = None,
    runner: Optional[SweepRunner] = None,
    warm_start: bool = False,
    store: Optional[SnapshotStore] = None,
    manifest: Optional["RunManifest"] = None,
) -> ManyflowResult:
    """Run the flow-count x max_p sweep and return per-cell verdicts.

    Every cell is an independent :class:`TaskSpec` fanned out through
    ``runner.map`` (bit-identical at any job count); oracle verdicts
    land in the manifest via :meth:`RunManifest.note_oracle`.
    """
    config = config or ManyflowConfig()
    # Pin the warmup fraction the specs encode to the config's request.
    if abs(config.warmup - config.duration * WARMUP_FRACTION) > 1e-9:
        config.warmup = config.duration * WARMUP_FRACTION
    runner = runner or SweepRunner()
    result = ManyflowResult(config=config)
    if manifest is not None:
        manifest.describe_harness(
            "manyflow", config=config, seed=config.seed, warm_start=warm_start
        )
    grid: List[Tuple[str, SceneSpec]] = []
    for n in config.flow_counts:
        for max_p in config.max_ps:
            label = f"{config.family} n={n} max_p={max_p:g}"
            grid.append((label, cell_spec(n, max_p, config)))

    if warm_start:
        store = store or SnapshotStore()
        if warm_start != "force":
            decision = warm_start_decision(
                [spec for _, spec in grid],
                lambda spec: prefix_spec(spec),
                WARMUP_FRACTION,
                store,
            )
            if not decision.use_warm:
                if manifest is not None:
                    manifest.note_warm_start_skipped(decision.reason)
                warm_start = False
    if warm_start:
        store_arg = str(store.root)
        labels = {id(spec): label for label, spec in grid}
        specs = warm_specs(
            [spec for _, spec in grid],
            prefix_for=lambda spec: prefix_spec(spec),
            spec_for=lambda spec, digest: TaskSpec(
                fn="repro.experiments.manyflow:run_cell_from_snapshot",
                args=(digest, spec, labels[id(spec)], config, store_arg),
                label=f"manyflow {labels[id(spec)]} (warm)",
            ),
            store=store,
            runner=runner,
        )
        if manifest is not None:
            manifest.note_warm_start(store)
    else:
        specs = [
            TaskSpec(
                fn="repro.experiments.manyflow:run_cell",
                args=(spec, label, config),
                label=f"manyflow {label}",
            )
            for label, spec in grid
        ]
    for cell in runner.map(specs):
        result.cells.append(cell)
        if manifest is not None and cell.verdict is not None:
            manifest.note_oracle(cell.label, cell.verdict)
    return result


def format_report(result: ManyflowResult) -> str:
    config = result.config
    lines = [
        "manyflow — generated scenes vs. the mean-field RED oracle",
        f"(family {config.family}, variant {config.variant},"
        f" {config.duration:g}s per cell, measured after"
        f" {config.duration * WARMUP_FRACTION:g}s warmup)",
        "",
    ]
    rows = []
    for cell in result.cells:
        if cell.verdict is not None:
            pred_q = f"{cell.verdict.predicted_queue:.1f}"
            pred_p = f"{cell.verdict.predicted_loss:.4f}"
            verdict = ("PASS" if cell.verdict.passed else "FAIL") + (
                f" [{cell.verdict.regime}]"
            )
        else:
            pred_q = pred_p = "-"
            verdict = "no oracle"
        rows.append(
            [
                cell.label,
                f"{cell.measured_queue:.1f}",
                pred_q,
                f"{cell.measured_loss:.4f}",
                pred_p,
                f"{cell.utilization:.2f}",
                verdict,
            ]
        )
    lines.append(
        format_table(
            ["cell", "queue", "model q", "loss", "model p", "util", "oracle"],
            rows,
        )
    )
    lines.append("")
    checked = [c for c in result.cells if c.verdict is not None]
    if checked:
        passed = sum(1 for c in checked if c.verdict.passed)
        lines.append(
            f"oracle: {passed}/{len(checked)} cells within tolerance"
            f" (queue +-35%/4 pkts, loss +-50%/0.01; docs/SCENARIOS.md)"
        )
    else:
        lines.append(
            "oracle: not applicable (multi-bottleneck family; measured only)"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI glue
    print(format_report(run_manyflow()))


if __name__ == "__main__":  # pragma: no cover
    main()
