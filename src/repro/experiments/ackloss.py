"""Extension experiment: the effect of ACK losses (paper Section 2.3).

RR relies on returning duplicate ACKs to clock out new data during
recovery, so the paper argues:

* rare ACK losses cause only a *linear* slowdown — an ACK loss makes
  ``ndup`` undercount, which RR reads as a further data loss and
  answers with a linear ``actnum`` shrink (never a multiplicative cut);
* New-Reno is hit harder (its inflated-window arithmetic starves);
* SACK is the least vulnerable but still times out if the ACK of a
  retransmission is lost.

This harness injects i.i.d. ACK losses on the reverse bottleneck path
at increasing rates while the forward path engineers a 4-drop burst,
then reports goodput and timeout counts per scheme.

ACK losses switch on just before the engineered burst (the warm-start
capture point): every cell of one variant shares the same clean
slow-start prefix — the forward burst is programmed identically
everywhere, so only the reverse-path loss module differs per cell —
and the measured window (``measure_seconds`` from loss detection) sees
the ACK-loss process throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.config import TcpConfig
from repro.errors import SnapshotError
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.metrics.throughput import goodput_bps
from repro.net.loss import AckLoss, DeterministicLoss
from repro.net.packet import set_uid_state
from repro.net.topology import DumbbellParams
from repro.runner import (
    PrefixSpec,
    SnapshotStore,
    SweepRunner,
    TaskSpec,
    fetch_prefix,
    step_until,
    warm_specs,
    warm_start_decision,
)
from repro.sim.rng import RngStream
from repro.viz.ascii import format_table


@dataclass
class AckLossConfig:
    """Knobs for the ACK-loss study."""

    variants: Sequence[str] = ("newreno", "sack", "rr")
    ack_loss_rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2)
    burst_drops: int = 4
    first_drop_seq: int = 100
    transfer_packets: int = 600
    measure_seconds: float = 4.0
    seed: int = 23
    runs_per_point: int = 3
    sim_duration: float = 120.0


@dataclass
class AckLossRow:
    variant: str
    ack_loss_rate: float
    goodput_bps: float
    timeouts: float
    completed_ratio: float


@dataclass
class AckLossResult:
    config: AckLossConfig
    rows: List[AckLossRow] = field(default_factory=list)


#: Safety margin (packets) the warm-up capture keeps below the first
#: engineered drop (same rationale as the Figure-5 harness).
WARM_MARGIN_PACKETS = 20

#: Step size (seconds) of the warm-up capture loop.
WARM_STEP_SECONDS = 0.02

#: Warm-start cost-model hint: the prefix is a fast slow-start ramp to
#: ~first_drop_seq of a transfer_packets transfer, and high-ACK-loss
#: cells run far past it — a few percent of a cell's work at most
#: (BENCH_experiments.json measured warm ~parity with cold here).
WARM_PREFIX_FRACTION = 0.03


def prefix_world(variant: str, config: AckLossConfig):
    """Build one variant's cell with the engineered forward burst
    programmed (identical in every cell) and a still-inert reverse
    path, and step it to just before the first drop."""
    set_uid_state(1)
    forward = DeterministicLoss(
        [(1, config.first_drop_seq + i) for i in range(config.burst_drops)]
    )
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=config.transfer_packets)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
        default_config=TcpConfig(receiver_window=64, initial_ssthresh=20.0),
        forward_loss=forward,
    )
    sender = scenario.senders[1]
    target = config.first_drop_seq - WARM_MARGIN_PACKETS
    step_until(
        scenario.sim,
        lambda: sender.maxseq >= target,
        step=WARM_STEP_SECONDS,
        deadline=config.sim_duration,
    )
    if sender.maxseq >= config.first_drop_seq:
        raise SnapshotError(
            f"warm-up overran the engineered burst: maxseq={sender.maxseq} >= "
            f"first_drop_seq={config.first_drop_seq}"
        )
    return scenario


def prefix_spec(variant: str, config: AckLossConfig) -> PrefixSpec:
    return PrefixSpec(
        fn="repro.experiments.ackloss:prefix_world",
        args=(variant, config),
        label=f"ackloss warm prefix {variant}",
    )


def _measure_from(scenario, variant: str, ack_rate: float, run: int, config: AckLossConfig):
    """Arm the cell's reverse-path ACK losses and finish the run."""
    rng = RngStream(config.seed + run, f"ackloss-{variant}-{ack_rate}")
    scenario.dumbbell.reverse_link.loss = AckLoss(rate=ack_rate, rng=rng)
    scenario.sim.run(until=config.sim_duration)
    sender, stats = scenario.flow(1)
    # Goodput over a fixed window starting at the engineered burst.
    t_loss = next(
        (t for t, _, retransmit in stats.send_series if retransmit), None
    )
    if t_loss is None:
        t_loss = 0.0
    return (
        goodput_bps(stats, t_loss, t_loss + config.measure_seconds),
        sender.timeouts,
        1.0 if sender.completed else 0.0,
    )


def _reduce_point(variant: str, ack_rate: float, measurements) -> AckLossRow:
    goodputs, timeouts, completions = zip(*measurements)
    n = len(goodputs)
    return AckLossRow(
        variant=variant,
        ack_loss_rate=ack_rate,
        goodput_bps=sum(goodputs) / n,
        timeouts=sum(timeouts) / n,
        completed_ratio=sum(completions) / n,
    )


def run_point(variant: str, ack_rate: float, config: AckLossConfig) -> AckLossRow:
    measurements = [
        _measure_from(prefix_world(variant, config), variant, ack_rate, run, config)
        for run in range(config.runs_per_point)
    ]
    return _reduce_point(variant, ack_rate, measurements)


def run_point_from_snapshot(
    digest: str,
    variant: str,
    ack_rate: float,
    config: AckLossConfig,
    store_root: Optional[str] = None,
) -> AckLossRow:
    """One (variant, rate) point with every run restored from the frozen
    pre-burst prefix."""
    snapshot = fetch_prefix(digest, store_root)
    measurements = [
        _measure_from(
            snapshot.restore(verify=False), variant, ack_rate, run, config
        )
        for run in range(config.runs_per_point)
    ]
    return _reduce_point(variant, ack_rate, measurements)


def run_ackloss(
    config: Optional[AckLossConfig] = None,
    runner: Optional[SweepRunner] = None,
    warm_start: bool = False,
    store: Optional[SnapshotStore] = None,
    manifest: Optional["RunManifest"] = None,
) -> AckLossResult:
    """Regenerate the ACK-loss grid.

    With ``warm_start`` the clean slow-start prefix (forward burst
    programmed, reverse path still inert) is simulated once per variant
    and every ``ack_loss_rates x runs_per_point`` cell forks it —
    bit-identical rows.
    """
    config = config or AckLossConfig()
    runner = runner or SweepRunner()
    result = AckLossResult(config=config)
    if manifest is not None:
        manifest.describe_harness(
            "ackloss", config=config, seed=config.seed, warm_start=warm_start
        )
    cells = [
        (variant, rate)
        for variant in config.variants
        for rate in config.ack_loss_rates
    ]
    prefix_for = lambda cell: prefix_spec(cell[0], config)  # noqa: E731
    if warm_start:
        store = store or SnapshotStore()
        if warm_start != "force":
            decision = warm_start_decision(
                cells, prefix_for, WARM_PREFIX_FRACTION, store
            )
            if not decision.use_warm:
                if manifest is not None:
                    manifest.note_warm_start_skipped(decision.reason)
                warm_start = False
    if warm_start:
        store_arg = str(store.root)
        specs = warm_specs(
            cells,
            prefix_for=prefix_for,
            spec_for=lambda cell, digest: TaskSpec(
                fn="repro.experiments.ackloss:run_point_from_snapshot",
                args=(digest, cell[0], cell[1], config, store_arg),
                label=f"ackloss {cell[0]}/{cell[1]} (warm)",
            ),
            store=store,
            runner=runner,
        )
        if manifest is not None:
            manifest.note_warm_start(store)
    else:
        specs = [
            TaskSpec(
                fn="repro.experiments.ackloss:run_point",
                args=(variant, rate, config),
                label=f"ackloss {variant}/{rate}",
            )
            for variant, rate in cells
        ]
    result.rows.extend(runner.map(specs))
    return result


def format_report(result: AckLossResult) -> str:
    config = result.config
    lines = [
        "Section 2.3 extension — robustness to ACK losses",
        f"(engineered {config.burst_drops}-drop burst + i.i.d. reverse-path ACK"
        f" loss; goodput over {config.measure_seconds:.0f}s from loss detection)",
        "",
    ]
    rows = []
    for rate in config.ack_loss_rates:
        row: List[object] = [f"{rate * 100:.0f}%"]
        for variant in config.variants:
            cell = next(
                r for r in result.rows
                if r.variant == variant and r.ack_loss_rate == rate
            )
            row.append(f"{cell.goodput_bps / 1000:.0f}")
            row.append(f"{cell.timeouts:.1f}")
        rows.append(row)
    headers: List[str] = ["ACK loss"]
    for variant in config.variants:
        headers += [f"{variant} kbps", f"{variant} RTOs"]
    lines.append(format_table(headers, rows))
    lines.append("")
    lines.append(
        "paper shape: RR degrades gracefully (linear shrink on false further-loss"
        " signals) and keeps outperforming New-Reno as ACK loss grows."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI glue
    print(format_report(run_ackloss()))


if __name__ == "__main__":  # pragma: no cover
    main()
