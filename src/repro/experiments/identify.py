"""The ``identify`` harness: run the behavior-class oracle as a sweep.

For every (variant, loss-cell) in the chosen grid the harness runs the
scenario, extracts the flow's trace features, classifies them against
the committed reference model, and reports the confusion matrix plus
any divergence between declared and identified class.  Verdicts land
in the run manifest through :meth:`RunManifest.note_identity`, the
same pattern manyflow uses for its mean-field oracle: the manifest
records what each run *behaved like*, not just that it finished.

This is the CLI face of :mod:`repro.ident`; docs/IDENTIFICATION.md
walks through the workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.ident.dataset import (
    HELDOUT_GRID,
    IDENT_VARIANTS,
    TRAINING_GRID,
    IdentScenario,
    collect_grid,
)
from repro.ident.features import FeatureVector
from repro.ident.oracle import (
    IdentityVerdict,
    identify_features,
    load_reference_classifier,
)

#: Grid spellings accepted by :attr:`IdentifyConfig.grid`.
GRIDS = {
    "heldout": lambda: HELDOUT_GRID,
    "training": lambda: TRAINING_GRID,
    "both": lambda: TRAINING_GRID + HELDOUT_GRID,
}


@dataclass
class IdentifyConfig:
    """Sweep shape for the identification harness."""

    variants: Tuple[str, ...] = IDENT_VARIANTS
    #: Which scenario grid to sweep: "heldout" (default — the cells the
    #: reference model never saw), "training", or "both".
    grid: str = "heldout"

    def scenarios(self) -> Tuple[IdentScenario, ...]:
        try:
            return GRIDS[self.grid]()
        except KeyError:
            raise ConfigurationError(
                f"unknown ident grid {self.grid!r}; expected one of"
                f" {sorted(GRIDS)}"
            ) from None


@dataclass
class IdentifyRow:
    """One (variant, cell) outcome."""

    variant: str
    key: str
    vector: FeatureVector
    verdict: IdentityVerdict

    @property
    def label(self) -> str:
        return f"{self.variant}/{self.key}"


@dataclass
class IdentifyResult:
    config: IdentifyConfig
    model_digest: str
    rows: List[IdentifyRow] = field(default_factory=list)

    @property
    def confusion(self) -> Dict[str, Dict[str, int]]:
        """``{declared: {identified: count}}`` over the swept cells."""
        matrix: Dict[str, Dict[str, int]] = {
            v: {w: 0 for w in self.config.variants} for v in self.config.variants
        }
        for row in self.rows:
            matrix[row.variant].setdefault(row.verdict.identified, 0)
            matrix[row.variant][row.verdict.identified] += 1
        return matrix

    @property
    def diverged(self) -> List[IdentifyRow]:
        """Rows whose conclusive identification contradicts the
        declared variant."""
        return [row for row in self.rows if row.verdict.diverged]

    @property
    def inconclusive(self) -> List[IdentifyRow]:
        return [row for row in self.rows if not row.verdict.conclusive]


def run_identify(
    config: Optional[IdentifyConfig] = None,
    runner: Optional["SweepRunner"] = None,  # noqa: F821 - lazy type
    manifest: Optional["RunManifest"] = None,  # noqa: F821 - lazy type
) -> IdentifyResult:
    """Sweep the grid and classify every run's behavior."""
    config = config or IdentifyConfig()
    model = load_reference_classifier()
    if manifest is not None:
        manifest.describe_harness(
            "identify", config=config, model_digest=model.digest()
        )
    result = IdentifyResult(config=config, model_digest=model.digest())
    for variant, key, vector in collect_grid(
        config.scenarios(), variants=config.variants, runner=runner
    ):
        verdict = identify_features(vector, declared=variant, classifier=model)
        row = IdentifyRow(variant=variant, key=key, vector=vector, verdict=verdict)
        result.rows.append(row)
        if manifest is not None:
            manifest.note_identity(row.label, verdict)
    return result


def format_confusion(
    confusion: Dict[str, Dict[str, int]], variants: Sequence[str]
) -> str:
    """Render ``{declared: {identified: count}}`` as a fixed-width
    table (rows = declared, columns = identified)."""
    width = max(len(v) for v in variants)
    lines = [
        " " * (width + 2)
        + "".join(f"{v:>{width + 2}}" for v in variants)
        + "   (identified)"
    ]
    for declared in variants:
        row = confusion.get(declared, {})
        cells = "".join(f"{row.get(v, 0):>{width + 2}}" for v in variants)
        lines.append(f"  {declared:<{width}}{cells}")
    return "\n".join(lines)


def format_report(result: IdentifyResult) -> str:
    config = result.config
    lines = [
        "Trace-based variant identification"
        f" (grid={config.grid}, model {result.model_digest[:16]}…)",
        "",
        format_confusion(result.confusion, config.variants),
        "",
    ]
    for row in result.rows:
        lines.append(f"  {row.label:<28} {row.verdict.describe()}")
    diverged = result.diverged
    inconclusive = result.inconclusive
    lines.append("")
    if diverged:
        lines.append(
            f"DIVERGED: {len(diverged)}/{len(result.rows)} runs behave like a"
            " different variant than declared:"
        )
        for row in diverged:
            lines.append(f"  {row.label}: identified {row.verdict.identified}")
    else:
        lines.append(
            f"all {len(result.rows)} conclusive runs identified correctly"
            + (f" ({len(inconclusive)} inconclusive)" if inconclusive else "")
        )
    return "\n".join(lines)
