"""Chaos campaigns: every variant vs. randomized fault plans.

The capstone of the chaos harness (docs/FAULTS.md).  Each TCP variant
runs a bounded transfer through ``seeds`` randomized fault campaigns —
link outages and flaps, router blackouts, reverse-path ACK loss,
duplication, corruption-drop, Gilbert-Elliott burst episodes, periodic
drops and RTO clock skew — while the full invariant suite
(:mod:`repro.sim.invariants`) listens on the trace bus and a
:class:`~repro.sim.watchdog.Watchdog` guards against stalls and event
storms.  A run *survives* when the transfer completes with exactly-once
in-order delivery, zero invariant violations and no watchdog abort.

The report gives per-variant survival, violation/abort/timeout counts
and goodput relative to a fault-free baseline.  The paper's §2.3 claim
— RR degrades linearly (not multiplicatively) when ACKs vanish, because
a missing dup-ACK only shrinks ``actnum`` by one — predicts RR keeps a
higher fraction of its baseline goodput than New-Reno under the mixed
fault load; the chaos table lets you check that shape directly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.config import TcpConfig
from repro.errors import InvariantViolation
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.faults.campaign import CampaignRunner, CampaignSpec
from repro.faults.plan import FaultContext, FaultPlan
from repro.faults.triage import TriageResult, triage_crash
from repro.ident.features import FlowTraceCollector
from repro.ident.oracle import IdentityVerdict, identify_trace
from repro.net.topology import DumbbellParams
from repro.runner import SnapshotStore, SweepRunner, TaskSpec
from repro.snapshot import Snapshot
from repro.sim.invariants import InvariantSuite
from repro.sim.watchdog import CrashReport, Watchdog
from repro.viz.ascii import format_table


@dataclass
class ChaosConfig:
    """Knobs for the chaos harness."""

    variants: Sequence[str] = ("tahoe", "reno", "newreno", "sack", "rr")
    seeds: int = 5
    seed_base: int = 211
    transfer_packets: int = 1500
    sim_duration: float = 400.0
    stall_timeout: float = 120.0   # > max RTO back-off (64s), so healthy
    check_interval: float = 5.0    #   timeout recovery never reads as a stall
    max_events: int = 2_000_000
    tail_size: int = 50
    # Snapshot-based crash triage: freeze the world where a guard
    # tripped, fork it with and without the active fault, and attach
    # the bisection verdict (and both fork digests) to the report.
    triage: bool = False
    triage_grace: float = 30.0
    # Where triage snapshots persist (crash point in full, forks as
    # deltas).  None = digests only, nothing written to disk.
    snapshot_store_root: Optional[str] = None
    # Behavior-class identity check (repro.ident): collect each run's
    # trace features and classify them against the reference model.  A
    # run whose *conclusive* identification contradicts its declared
    # variant is flagged in the report — heavy fault plans legitimately
    # distort dynamics, so an inconclusive verdict is recorded but
    # never flagged, and divergence does not count against survival.
    identify: bool = True
    campaign: CampaignSpec = field(
        default_factory=lambda: CampaignSpec(
            horizon=20.0,      # faults land while the transfer is in flight
            warmup=1.0,
            max_actions=3,
            episode_max=8.0,
        )
    )

    def tcp_config(self) -> TcpConfig:
        return TcpConfig(receiver_window=64, initial_ssthresh=20.0)


@dataclass
class ChaosRun:
    """One (variant, seed) cell."""

    variant: str
    seed_index: int
    plan: str                       # human-readable plan description
    completed: bool = False
    delivered: int = 0
    delivered_ok: bool = False
    duplicates: int = 0
    timeouts: int = 0
    finish_time: Optional[float] = None
    violation: Optional[InvariantViolation] = None
    crash: Optional[CrashReport] = None
    records_checked: int = 0
    snapshot_digest: Optional[str] = None
    triage: Optional[TriageResult] = None
    identity: Optional[IdentityVerdict] = None

    @property
    def identity_diverged(self) -> bool:
        """True when the behavior-class oracle conclusively identified
        this run as a *different* variant than declared."""
        return self.identity is not None and self.identity.diverged

    @property
    def survived(self) -> bool:
        return (
            self.completed
            and self.delivered_ok
            and self.violation is None
            and self.crash is None
        )


@dataclass
class ChaosVariantSummary:
    variant: str
    runs: int
    survived: int
    violations: int
    watchdog_aborts: int
    incomplete: int
    mean_timeouts: float
    baseline_time: float
    goodput_vs_baseline: float      # mean over completed runs, 1.0 = no loss

    @property
    def survival_rate(self) -> float:
        return self.survived / self.runs if self.runs else 0.0


@dataclass
class ChaosResult:
    config: ChaosConfig
    runs: List[ChaosRun] = field(default_factory=list)
    baselines: Dict[str, float] = field(default_factory=dict)

    def summary(self, variant: str) -> ChaosVariantSummary:
        rows = [r for r in self.runs if r.variant == variant]
        baseline = self.baselines.get(variant, 0.0)
        ratios = [
            baseline / r.finish_time
            for r in rows
            if r.finish_time and baseline > 0.0
        ]
        return ChaosVariantSummary(
            variant=variant,
            runs=len(rows),
            survived=sum(1 for r in rows if r.survived),
            violations=sum(1 for r in rows if r.violation is not None),
            watchdog_aborts=sum(1 for r in rows if r.crash is not None),
            incomplete=sum(1 for r in rows if not r.completed),
            mean_timeouts=(
                sum(r.timeouts for r in rows) / len(rows) if rows else 0.0
            ),
            baseline_time=baseline,
            goodput_vs_baseline=(sum(ratios) / len(ratios)) if ratios else 0.0,
        )

    @property
    def clean(self) -> bool:
        """True when every run survived."""
        return all(r.survived for r in self.runs)


class _StopOnComplete:
    """Completion hook that halts the engine — a named callable instead
    of a lambda so a chaos world stays snapshot-safe (picklable)."""

    __slots__ = ("sim",)

    def __init__(self, sim):
        self.sim = sim

    def __call__(self, _t: float) -> None:
        self.sim.request_stop("transfer complete")


def _run_one(
    variant: str,
    config: ChaosConfig,
    plan: Optional[FaultPlan],
    seed_index: int = -1,
) -> ChaosRun:
    """One guarded transfer; ``plan=None`` is the fault-free baseline."""
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=config.transfer_packets)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
        default_config=config.tcp_config(),
    )
    sim, bell = scenario.sim, scenario.dumbbell

    suite = InvariantSuite.standard(tail_size=config.tail_size)
    suite.watch_queue(bell.bottleneck_queue)
    suite.install(bell.net.trace)

    watchdog = Watchdog(
        sim,
        senders=scenario.senders,
        stall_timeout=config.stall_timeout,
        check_interval=config.check_interval,
        max_events=config.max_events,
        tail=suite.tail,
    ).arm()

    if plan is not None:
        plan.install(FaultContext.from_scenario(scenario))

    collector = None
    if config.identify:
        collector = FlowTraceCollector().install(bell.net.trace)

    sender = scenario.senders[1]
    sender.completion_callbacks.append(_StopOnComplete(sim))

    run = ChaosRun(
        variant=variant,
        seed_index=seed_index,
        plan=plan.describe() if plan is not None else "fault-free baseline",
    )
    try:
        sim.run(until=config.sim_duration)
    except InvariantViolation as violation:
        run.violation = violation
    finally:
        watchdog.disarm()
        suite.uninstall()
        if collector is not None:
            collector.uninstall()

    if collector is not None and 1 in collector.flows:
        run.identity = identify_trace(collector.flows[1], declared=variant)

    receiver = scenario.receivers[1]
    run.completed = sender.completed
    run.delivered = receiver.delivered
    run.delivered_ok = receiver.delivered == config.transfer_packets
    run.duplicates = receiver.duplicates_received
    run.timeouts = sender.timeouts
    run.finish_time = sender.complete_time
    run.crash = watchdog.report
    run.records_checked = suite.records_seen
    failed = run.crash is not None or run.violation is not None
    if failed and config.triage and plan is not None:
        _triage_failure(run, scenario, config)
    if failed:
        _dump_failure_artifact(run)
    return run


def _triage_failure(run: ChaosRun, scenario, config: ChaosConfig) -> None:
    """Freeze the crash point and bisect it (see repro.faults.triage).

    Runs after the watchdog is disarmed and the invariant suite
    uninstalled, so the world is capturable and the forks re-run
    without guards re-tripping mid-triage.
    """
    crash_snapshot = Snapshot.capture(
        scenario, label=f"chaos crash {run.variant} seed {run.seed_index}"
    )
    store = (
        SnapshotStore(config.snapshot_store_root)
        if config.snapshot_store_root
        else None
    )
    triage = triage_crash(crash_snapshot, grace=config.triage_grace, store=store)
    run.snapshot_digest = crash_snapshot.digest
    run.triage = triage
    if run.crash is not None:
        run.crash.snapshot_digest = crash_snapshot.digest
        run.crash.triage = triage


def _dump_failure_artifact(run: ChaosRun) -> None:
    """Append the crash report / violation (with trace tail) to
    ``$REPRO_ARTIFACT_DIR/chaos-failures.txt`` so CI can upload it as a
    workflow artifact.  A no-op when the env var is unset."""
    artifact_dir = os.environ.get("REPRO_ARTIFACT_DIR")
    if not artifact_dir:
        return
    lines = [f"=== chaos failure: {run.variant} seed {run.seed_index} ===", run.plan]
    if run.violation is not None:
        lines.append(f"invariant violation: {run.violation}")
        lines.append(run.violation.format_tail())
    if run.crash is not None:
        lines.append(run.crash.format())
    elif run.triage is not None:
        lines.append(run.triage.format())
    lines.append("")
    try:
        path = Path(artifact_dir)
        path.mkdir(parents=True, exist_ok=True)
        with open(path / "chaos-failures.txt", "a", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
    except OSError:  # pragma: no cover - artifact capture must not mask the run
        pass


def run_cell(variant: str, config: ChaosConfig, seed_index: int = -1) -> ChaosRun:
    """One chaos cell, self-contained for process fan-out.

    ``seed_index < 0`` is the fault-free baseline; otherwise the worker
    rebuilds campaign plan ``seed_index`` from ``(config.seed_base,
    config.campaign)`` — :meth:`CampaignRunner.plan_for` is pure in
    those arguments, so no plan crosses the process boundary and
    parallel campaigns match serial ones bit for bit.
    """
    plan = None
    if seed_index >= 0:
        campaign = CampaignRunner(seed=config.seed_base, spec=config.campaign)
        plan = campaign.plan_for(seed_index)
    return _run_one(variant, config, plan, seed_index)


def run_chaos(
    config: Optional[ChaosConfig] = None,
    runner: Optional[SweepRunner] = None,
    manifest: Optional["RunManifest"] = None,
) -> ChaosResult:
    """All variants x ``seeds`` campaigns (+ one baseline per variant)."""
    config = config or ChaosConfig()
    runner = runner or SweepRunner()
    result = ChaosResult(config=config)
    if manifest is not None:
        manifest.describe_harness("chaos", config=config, seed=config.seed_base)
    campaign = CampaignRunner(seed=config.seed_base, spec=config.campaign)
    specs: List[TaskSpec] = []
    for variant in config.variants:
        specs.append(
            TaskSpec(
                fn="repro.experiments.chaos:run_cell",
                args=(variant, config),
                label=f"chaos {variant} baseline",
            )
        )
        specs.extend(
            campaign.cell_specs(
                "repro.experiments.chaos:run_cell",
                config.seeds,
                args=(variant, config),
            )
        )
    cells = runner.map(specs)
    per_variant = 1 + config.seeds
    for slot, variant in enumerate(config.variants):
        baseline, *campaign_runs = cells[slot * per_variant : (slot + 1) * per_variant]
        if baseline.finish_time is None:
            raise RuntimeError(
                f"fault-free baseline for {variant!r} did not complete "
                f"within {config.sim_duration}s"
            )
        result.baselines[variant] = baseline.finish_time
        result.runs.extend(campaign_runs)
        if manifest is not None:
            if baseline.identity is not None:
                manifest.note_identity(f"{variant}/baseline", baseline.identity)
            for run in campaign_runs:
                if run.identity is not None:
                    manifest.note_identity(
                        f"{variant}/seed{run.seed_index}", run.identity
                    )
    return result


def format_report(result: ChaosResult) -> str:
    config = result.config
    lines = [
        "Chaos harness — fault-injection campaigns with online invariant"
        " checking and watchdog",
        f"({config.seeds} seeded campaigns/variant, {config.transfer_packets}"
        f" packets/transfer, faults within "
        f"[{config.campaign.warmup:.0f}s, {config.campaign.horizon:.0f}s),"
        f" stall timeout {config.stall_timeout:.0f}s)",
        "",
    ]
    rows = []
    for variant in config.variants:
        s = result.summary(variant)
        rows.append(
            [
                variant,
                f"{s.survived}/{s.runs}",
                s.violations,
                s.watchdog_aborts,
                s.incomplete,
                f"{s.mean_timeouts:.1f}",
                f"{s.baseline_time:.2f}",
                f"{100 * s.goodput_vs_baseline:.0f}%",
            ]
        )
    lines.append(
        format_table(
            [
                "variant",
                "survived",
                "inv-viol",
                "wd-abort",
                "incomplete",
                "RTOs",
                "base s",
                "goodput",
            ],
            rows,
        )
    )
    lines.append("")
    if result.clean:
        lines.append(
            "all runs survived: exactly-once in-order delivery, zero invariant"
            " violations, zero watchdog aborts."
        )
    else:
        for run in result.runs:
            if run.survived:
                continue
            reason = (
                "invariant violation"
                if run.violation is not None
                else f"watchdog abort ({run.crash.reason})"
                if run.crash is not None
                else "incomplete/short delivery"
            )
            lines.append(f"FAILED {run.variant} seed {run.seed_index}: {reason}")
            lines.append(f"  {run.plan}")
            if run.violation is not None:
                lines.append(f"  {run.violation}")
            if run.crash is not None:
                lines.append("  " + run.crash.format().replace("\n", "\n  "))
            elif run.triage is not None:
                lines.append("  " + run.triage.format().replace("\n", "\n  "))
    if config.identify:
        diverged = [r for r in result.runs if r.identity_diverged]
        checked = sum(1 for r in result.runs if r.identity is not None)
        inconclusive = sum(
            1
            for r in result.runs
            if r.identity is not None and not r.identity.conclusive
        )
        lines.append("")
        if diverged:
            lines.append(
                f"IDENTITY DIVERGENCE: {len(diverged)}/{checked} runs"
                " conclusively behave like a different variant than declared:"
            )
            for run in diverged:
                lines.append(
                    f"  {run.variant} seed {run.seed_index}:"
                    f" {run.identity.describe()}"
                )
        else:
            lines.append(
                f"behavior-class oracle: {checked} runs checked, no declared/"
                f"identified divergence ({inconclusive} inconclusive under"
                " fault load)."
            )
    lines.append("")
    lines.append(
        "paper shape (Section 2.3): under ACK loss RR degrades linearly —"
        " expect RR to keep a goodput fraction at or above New-Reno's here."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI glue
    print(format_report(run_chaos()))


if __name__ == "__main__":  # pragma: no cover
    main()
