"""Ablation study: which of RR's design choices buy the performance?

DESIGN.md calls out four load-bearing choices; each gets a modified RR
sender and runs through the Figure-5 6-drop scenario plus the Figure-6
RED scenario:

* ``rr`` — the full algorithm (baseline);
* ``rr-noprobe-growth`` — never increments ``actnum`` at a clean RTT
  boundary (no linear probing for the new equilibrium: tests the claim
  that probing, not just loss repair, drives RR's link utilisation);
* ``rr-retreat-always`` — keeps the retreat policy (one new packet per
  *two* duplicate ACKs) for the whole recovery, New-Reno-style
  exponential decay (tests "exponential decrease is applied only during
  the first RTT");
* ``rr-reset-on-loss`` — on a further-loss detection collapses
  ``actnum`` to zero instead of the linear ``actnum = ndup`` shrink
  (tests the "treat bursty losses as a single congestion signal" rule);
* ``rr-burst-exit`` — exits with ``cwnd = ssthresh`` (as New-Reno/SACK
  do) instead of ``cwnd = actnum`` (tests the big-ACK-burst
  elimination).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type

from repro.config import TcpConfig
from repro.core.robust_recovery import RobustRecoverySender, RrPhase
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.metrics.throughput import goodput_bps, loss_recovery_span, loss_recovery_throughput
from repro.net.loss import DeterministicLoss
from repro.net.topology import DumbbellParams
from repro.runner import SweepRunner, TaskSpec
from repro.viz.ascii import format_table


class RrNoProbeGrowth(RobustRecoverySender):
    """RR without the +1 linear growth at clean probe RTT boundaries."""

    variant = "rr-noprobe-growth"

    def _probe_rtt_boundary(self, ackno: int) -> None:
        saved = self.actnum
        super()._probe_rtt_boundary(ackno)
        if self.actnum > saved:
            self.actnum = saved  # undo the growth (the extra packet, if
            # sent, simply restores one dormant slot)


class RrRetreatAlways(RobustRecoverySender):
    """RR that stays exponential (1 new pkt / 2 dups) in every recovery
    RTT — the New-Reno decay the paper argues against."""

    variant = "rr-retreat-always"

    def _recovery_dupack(self, packet) -> None:
        self.ndup += 1
        if self.ndup % 2 == 0:
            sent = self._send_beyond_maxseq()
            if self.phase is RrPhase.RETREAT:
                self._retreat_sent += sent


class RrResetOnLoss(RobustRecoverySender):
    """RR that collapses actnum to 0 on a further-loss detection,
    treating every loss as a fresh congestion signal."""

    variant = "rr-reset-on-loss"

    def _probe_rtt_boundary(self, ackno: int) -> None:
        further_loss = self.ndup < self.actnum
        super()._probe_rtt_boundary(ackno)
        if further_loss:
            self.actnum = 0


class RrBurstExit(RobustRecoverySender):
    """RR that exits with cwnd = ssthresh (the big-ACK burst returns)."""

    variant = "rr-burst-exit"

    def _exit_recovery(self, ackno: int) -> None:
        halved = self.ssthresh
        super()._exit_recovery(ackno)
        self.cwnd = max(halved, 1.0)
        self.ssthresh = max(halved, 2.0)
        self.send_available()


ABLATIONS: Dict[str, Type[RobustRecoverySender]] = {
    "rr": RobustRecoverySender,
    "rr-noprobe-growth": RrNoProbeGrowth,
    "rr-retreat-always": RrRetreatAlways,
    "rr-reset-on-loss": RrResetOnLoss,
    "rr-burst-exit": RrBurstExit,
}


@dataclass
class AblationConfig:
    """Knobs for the ablation harness."""

    ablations: Sequence[str] = tuple(ABLATIONS)
    burst_drops: int = 6
    first_drop_seq: int = 100
    transfer_packets: int = 600
    fixed_window_seconds: float = 2.0
    sim_duration: float = 120.0


@dataclass
class AblationRow:
    name: str
    recovery_throughput_bps: Optional[float]
    window_throughput_bps: Optional[float]
    timeouts: int
    max_burst_after_exit: int


@dataclass
class AblationResult:
    config: AblationConfig
    rows: List[AblationRow] = field(default_factory=list)


def _exit_burst(stats) -> int:
    """Largest number of packets sent within 1 ms of a recovery exit —
    quantifies the big-ACK burst."""
    biggest = 0
    for episode in stats.episodes:
        if episode.exit_time is None:
            continue
        burst = sum(
            1
            for t, _, _ in stats.send_series
            if episode.exit_time <= t <= episode.exit_time + 0.001
        )
        biggest = max(biggest, burst)
    return biggest


def run_one(name: str, config: AblationConfig) -> AblationRow:
    sender_cls = ABLATIONS[name]
    loss = DeterministicLoss(
        [(1, config.first_drop_seq + i) for i in range(config.burst_drops)]
    )
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant="rr", amount_packets=config.transfer_packets)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
        default_config=TcpConfig(receiver_window=64, initial_ssthresh=20.0),
        forward_loss=loss,
        sender_overrides={1: sender_cls},
    )
    scenario.sim.run(until=config.sim_duration)
    sender, stats = scenario.flow(1)
    span = loss_recovery_span(stats)
    window_bps = None
    if span is not None:
        window_bps = goodput_bps(stats, span[0], span[0] + config.fixed_window_seconds)
    return AblationRow(
        name=name,
        recovery_throughput_bps=loss_recovery_throughput(stats),
        window_throughput_bps=window_bps,
        timeouts=sender.timeouts,
        max_burst_after_exit=_exit_burst(stats),
    )


def run_ablation(
    config: Optional[AblationConfig] = None,
    runner: Optional[SweepRunner] = None,
    manifest: Optional["RunManifest"] = None,
) -> AblationResult:
    config = config or AblationConfig()
    runner = runner or SweepRunner()
    result = AblationResult(config=config)
    if manifest is not None:
        manifest.describe_harness("ablation", config=config)
    specs = [
        TaskSpec(
            fn="repro.experiments.ablation:run_one",
            args=(name, config),
            label=f"ablation {name}",
        )
        for name in config.ablations
    ]
    result.rows.extend(runner.map(specs))
    return result


def format_report(result: AblationResult) -> str:
    lines = [
        "Ablation — RR design choices",
        f"({result.config.burst_drops}-drop burst, drop-tail dumbbell)",
        "",
    ]
    rows = []
    for row in result.rows:
        rows.append(
            [
                row.name,
                f"{row.recovery_throughput_bps / 1000:.1f}" if row.recovery_throughput_bps else "-",
                f"{row.window_throughput_bps / 1000:.1f}" if row.window_throughput_bps else "-",
                row.timeouts,
                row.max_burst_after_exit,
            ]
        )
    lines.append(
        format_table(
            ["configuration", "recovery kbps", "2s-window kbps", "RTOs", "exit burst"],
            rows,
        )
    )
    lines.append("")
    lines.append(
        "expected: full RR leads; retreat-always decays like New-Reno;"
        " burst-exit shows a packet burst at recovery exit."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI glue
    print(format_report(run_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
