"""Machine-readable exports for the experiment results.

Each experiment's result object converts to a flat list of dicts and
lands as CSV + JSON in a directory — for replotting the figures with
real plotting stacks, or for regression-diffing runs.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Mapping, Union

from repro.metrics.export import rows_to_csv, rows_to_json

PathLike = Union[str, Path]


def _strip(row: Mapping[str, object]) -> Dict[str, object]:
    """Drop non-scalar fields (traces, nested objects) from a row."""
    return {
        key: value
        for key, value in row.items()
        if isinstance(value, (int, float, str, bool)) or value is None
    }


def figure5_rows(result) -> List[Dict[str, object]]:
    return [_strip(asdict(row)) for row in result.rows]


def figure6_rows(result) -> List[Dict[str, object]]:
    rows = []
    for variant, flow in result.flows.items():
        rows.append(
            _strip(
                {
                    "variant": variant,
                    "final_ack": flow.final_ack,
                    "throughput_bps": flow.throughput_bps,
                    "timeouts": flow.timeouts,
                    "retransmits": flow.retransmits,
                    "longest_stall": flow.longest_stall,
                }
            )
        )
    return rows


def figure7_rows(result) -> List[Dict[str, object]]:
    return [_strip(asdict(point)) for point in result.points]


def table5_rows(result) -> List[Dict[str, object]]:
    return [_strip(asdict(row)) for row in result.rows]


def burstchannel_rows(result) -> List[Dict[str, object]]:
    return [_strip(asdict(row)) for row in result.rows]


def manyflow_rows(result) -> List[Dict[str, object]]:
    rows = []
    for cell in result.cells:
        row = _strip(asdict(cell))
        if cell.verdict is not None:
            row.update(
                oracle_passed=cell.verdict.passed,
                predicted_queue=cell.verdict.predicted_queue,
                predicted_loss=cell.verdict.predicted_loss,
                regime=cell.verdict.regime,
            )
        rows.append(row)
    return rows


def rivals_rows(result) -> List[Dict[str, object]]:
    rows = []
    for cell in result.cells:
        row = _strip(asdict(cell))
        # Uniform columns: only model cells carry a verdict, but the CSV
        # writer keys every row off the first one's fields.
        row.update(
            oracle_passed=cell.verdict.passed if cell.verdict else None,
            predicted_bps=cell.verdict.predicted_bps if cell.verdict else None,
            predicted_window=(
                cell.verdict.predicted_window if cell.verdict else None
            ),
            model_regime=cell.verdict.regime if cell.verdict else None,
        )
        rows.append(row)
    return rows


_CONVERTERS = {
    "fig5": figure5_rows,
    "fig6": figure6_rows,
    "fig7": figure7_rows,
    "table5": table5_rows,
    "burst": burstchannel_rows,
    "manyflow": manyflow_rows,
    "rivals": rivals_rows,
}


def export_result(experiment_id: str, result, directory: PathLike) -> List[Path]:
    """Write ``<id>.csv`` and ``<id>.json`` for a finished experiment.

    ``experiment_id`` is one of fig5/fig6/fig7/table5/burst.  Returns
    the written paths.
    """
    converter = _CONVERTERS.get(experiment_id)
    if converter is None:
        raise KeyError(
            f"no exporter for {experiment_id!r}; choose from {sorted(_CONVERTERS)}"
        )
    rows = converter(result)
    directory = Path(directory)
    return [
        rows_to_csv(rows, directory / f"{experiment_id}.csv"),
        rows_to_json(rows, directory / f"{experiment_id}.json"),
    ]
