"""Figure 5: effective throughput during recovery from 3 / 6 packet
losses within one window, drop-tail gateways.

Paper setup (Table 3 + Section 3.2): dumbbell, bottleneck 0.8 Mb/s,
drop-tail buffer, side links 10 Mb/s, FTP traffic, ACK per packet.  The
paper engineered deterministic 3-drop and 6-drop windows for flow 1 via
two background flows and an 8-packet buffer; we inject the drops
deterministically instead (same determinism, no tuning fragility — see
DESIGN.md §4) with the buffer at 25 packets so the *only* losses are
the engineered ones, and cap the pre-loss window around 20 packets via
the initial ssthresh (the regime of Fig. 6, "bursty packet losses occur
after cwnd reaches 16").

Two effective-throughput readings are reported per scheme:

* ``recovery`` — goodput from loss detection until the cumulative ACK
  first covers everything sent before the loss (the recovery period);
* ``window2s`` — goodput over a fixed 2 s window from loss detection,
  which also captures how well each scheme's exit state carries into
  congestion avoidance.

Expected shape (paper): RR ≈/≥ SACK >> New-Reno; for 6 drops Tahoe
beats New-Reno ("Tahoe is more robust than New-Reno in case of high
bursty losses").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import TcpConfig
from repro.errors import SnapshotError
from repro.experiments.common import (
    FlowSpec,
    PAPER_VARIANTS,
    ScenarioResult,
    build_dumbbell_scenario,
)
from repro.metrics.throughput import (
    goodput_bps,
    loss_recovery_span,
    loss_recovery_throughput,
)
from repro.net.loss import DeterministicLoss
from repro.net.topology import DumbbellParams
from repro.runner import (
    PrefixSpec,
    SnapshotStore,
    SweepRunner,
    TaskSpec,
    load_prefix,
    step_until,
    warm_specs,
    warm_start_decision,
)
from repro.snapshot import Snapshot
from repro.viz.ascii import format_table


@dataclass
class Figure5Config:
    """Knobs for the Figure 5 harness (defaults = paper values)."""

    variants: Sequence[str] = tuple(PAPER_VARIANTS)
    drop_counts: Sequence[int] = (3, 6)
    first_drop_seq: int = 100
    transfer_packets: int = 600
    buffer_packets: int = 25
    pre_loss_window: int = 20      # via initial ssthresh
    fixed_window_seconds: float = 2.0
    sim_duration: float = 120.0


@dataclass
class Figure5Row:
    variant: str
    drops: int
    recovery_throughput_bps: Optional[float]
    window_throughput_bps: Optional[float]
    recovery_duration: Optional[float]
    timeouts: int
    retransmits: int
    completed: bool
    complete_time: Optional[float]


@dataclass
class Figure5Result:
    config: Figure5Config
    rows: List[Figure5Row] = field(default_factory=list)

    def row(self, variant: str, drops: int) -> Figure5Row:
        for row in self.rows:
            if row.variant == variant and row.drops == drops:
                return row
        raise KeyError((variant, drops))


def _tcp_config(config: Figure5Config) -> TcpConfig:
    return TcpConfig(
        receiver_window=64, initial_ssthresh=float(config.pre_loss_window)
    )


def _build(
    variant: str, loss: DeterministicLoss, config: Figure5Config
) -> ScenarioResult:
    """The Figure-5 world for one cell, not yet run."""
    return build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=config.transfer_packets)],
        params=DumbbellParams(n_pairs=1, buffer_packets=config.buffer_packets),
        default_config=_tcp_config(config),
        forward_loss=loss,
    )


def _finish(
    scenario: ScenarioResult, variant: str, n_drops: int, config: Figure5Config
) -> Figure5Row:
    """Run the remainder of a (possibly warm-started) cell and reduce it
    to a result row."""
    scenario.sim.run(until=config.sim_duration)
    tcp_config = _tcp_config(config)
    sender, stats = scenario.flow(1)
    span = loss_recovery_span(stats)
    recovery_bps = loss_recovery_throughput(stats, tcp_config.mss_bytes)
    window_bps = None
    duration = None
    if span is not None:
        t_start, t_end, _ = span
        duration = t_end - t_start
        window_bps = goodput_bps(
            stats, t_start, t_start + config.fixed_window_seconds, tcp_config.mss_bytes
        )
    return Figure5Row(
        variant=variant,
        drops=n_drops,
        recovery_throughput_bps=recovery_bps,
        window_throughput_bps=window_bps,
        recovery_duration=duration,
        timeouts=sender.timeouts,
        retransmits=sender.retransmits,
        completed=sender.completed,
        complete_time=sender.complete_time,
    )


def _cell_drops(n_drops: int, config: Figure5Config) -> List[tuple]:
    return [(1, config.first_drop_seq + i) for i in range(n_drops)]


def run_single(variant: str, n_drops: int, config: Figure5Config) -> Figure5Row:
    """Run one (variant, drop-count) cell of Figure 5 from t=0."""
    loss = DeterministicLoss(_cell_drops(n_drops, config))
    return _finish(_build(variant, loss, config), variant, n_drops, config)


#: Safety margin (packets) the warm-up capture keeps below the first
#: engineered drop.  Must exceed the per-step window growth so the
#: stepping loop cannot overshoot the loss point within one check.
WARM_MARGIN_PACKETS = 20

#: Step size (seconds) of the warm-up capture loop.
WARM_STEP_SECONDS = 0.02

#: Fraction of one cold cell's runtime spent in the shared pre-loss
#: prefix — the warm-start cost model's hint.  The slow-start ramp to
#: ``first_drop_seq`` dominates a cell whose transfer finishes shortly
#: after recovery (BENCH_experiments.json measures a ~2.4x warm replay
#: on the late-loss grid, i.e. the prefix is over half the work).
WARM_PREFIX_FRACTION = 0.5


def prefix_world(variant: str, config: Figure5Config):
    """Build and advance the shared pre-loss prefix of a Figure-5 cell.

    The world is built with an *empty* drop list — identical on the wire
    to any cell's world before its first engineered drop — and stepped
    until the sender's highest transmitted sequence approaches (but has
    provably not reached) ``first_drop_seq``.  Each sweep cell forks
    this one frozen world and reprograms the loss module with its own
    drops.
    """
    scenario = _build(variant, DeterministicLoss([]), config)
    sender = scenario.senders[1]
    target = config.first_drop_seq - WARM_MARGIN_PACKETS
    step_until(
        scenario.sim,
        lambda: sender.maxseq >= target,
        step=WARM_STEP_SECONDS,
        deadline=config.sim_duration,
    )
    if sender.maxseq >= config.first_drop_seq:
        raise SnapshotError(
            f"warm-up overran the loss point: maxseq={sender.maxseq} >= "
            f"first_drop_seq={config.first_drop_seq} (margin too small for "
            "this bandwidth/window configuration)"
        )
    return scenario


def prefix_spec(variant: str, config: Figure5Config) -> PrefixSpec:
    """The named prefix spec behind :func:`prefix_world` (see
    :mod:`repro.runner.warmstart` for the contract)."""
    return PrefixSpec(
        fn="repro.experiments.figure5:prefix_world",
        args=(variant, config),
        label=f"fig5 warm prefix {variant}",
    )


def capture_warm_snapshot(variant: str, config: Figure5Config) -> Snapshot:
    """Run the shared pre-loss prefix of a Figure-5 cell and freeze it."""
    return Snapshot.capture(
        prefix_world(variant, config), label=f"fig5 warm prefix {variant}"
    )


def run_single_from_snapshot(
    digest: str,
    variant: str,
    n_drops: int,
    config: Figure5Config,
    store_root: Optional[str] = None,
) -> Figure5Row:
    """Run one cell warm-started from a stored pre-loss snapshot.

    ``digest`` keys the frozen world in the :class:`SnapshotStore`
    (default store unless ``store_root`` is given); the cell's cache
    identity therefore changes automatically whenever the warm-up
    prefix it continues from changes.
    """
    # verify=False: the store is content-addressed (the key IS the state
    # digest recorded at capture), and re-hashing the world per cell
    # would cost a noticeable slice of the warm-start win; the fork
    # tests assert the stronger end-to-end property (rows == cold rows).
    # load_prefix self-heals a missing/corrupt store entry by
    # recomputing the prefix from its recorded spec (docs/RESILIENCE.md).
    scenario = load_prefix(digest, store_root, verify=False)
    scenario.dumbbell.forward_link.loss.reprogram(_cell_drops(n_drops, config))
    return _finish(scenario, variant, n_drops, config)


def run_figure5(
    config: Optional[Figure5Config] = None,
    runner: Optional[SweepRunner] = None,
    warm_start: bool = False,
    store: Optional[SnapshotStore] = None,
    manifest: Optional["RunManifest"] = None,
) -> Figure5Result:
    """Regenerate both panels of Figure 5.

    With ``warm_start`` the pre-loss prefix is simulated once per
    variant, captured, and every drop-count cell forks the frozen world
    instead of re-running slow start from t=0 (bit-identical rows, see
    tests/snapshot/test_fork.py).  ``warm_start=True`` first consults
    :func:`~repro.runner.warmstart.warm_start_decision` and falls back
    to the cold path when no win is predicted (recorded in the manifest
    as ``warm_start_skipped``); ``warm_start="force"`` skips the cost
    model.  A :class:`~repro.obs.RunManifest` passed as ``manifest`` is
    annotated with the harness identity, canonical config and
    warm-start reuse counters (docs/OBSERVABILITY.md).
    """
    config = config or Figure5Config()
    runner = runner or SweepRunner()
    result = Figure5Result(config=config)
    if manifest is not None:
        manifest.describe_harness("fig5", config=config, warm_start=warm_start)
    cells = [
        (variant, n_drops)
        for n_drops in config.drop_counts
        for variant in config.variants
    ]
    prefix_for = lambda cell: prefix_spec(cell[0], config)  # noqa: E731
    if warm_start:
        store = store or SnapshotStore()
        if warm_start != "force":
            decision = warm_start_decision(
                cells, prefix_for, WARM_PREFIX_FRACTION, store
            )
            if not decision.use_warm:
                if manifest is not None:
                    manifest.note_warm_start_skipped(decision.reason)
                warm_start = False
    if warm_start:
        store_arg = str(store.root)
        specs = warm_specs(
            cells,
            prefix_for=prefix_for,
            spec_for=lambda cell, digest: TaskSpec(
                fn="repro.experiments.figure5:run_single_from_snapshot",
                args=(digest, cell[0], cell[1], config, store_arg),
                label=f"fig5 {cell[0]}/{cell[1]}-drop (warm)",
            ),
            store=store,
            runner=runner,
        )
        if manifest is not None:
            manifest.note_warm_start(store)
    else:
        specs = [
            TaskSpec(
                fn="repro.experiments.figure5:run_single",
                args=(variant, n_drops, config),
                label=f"fig5 {variant}/{n_drops}-drop",
            )
            for variant, n_drops in cells
        ]
    result.rows.extend(runner.map(specs))
    return result


def format_report(result: Figure5Result) -> str:
    """Render the paper-vs-measured comparison."""
    lines = [
        "Figure 5 — effective throughput during congestion recovery",
        "(drop-tail; deterministic 3/6 packet drops within one window)",
        "",
    ]
    for n_drops in result.config.drop_counts:
        rows = []
        for variant in result.config.variants:
            row = result.row(variant, n_drops)
            rows.append(
                [
                    variant,
                    _kbps(row.recovery_throughput_bps),
                    _kbps(row.window_throughput_bps),
                    f"{row.recovery_duration:.2f}" if row.recovery_duration else "-",
                    row.timeouts,
                    row.retransmits,
                ]
            )
        lines.append(f"--- {n_drops} packet losses in a window ---")
        lines.append(
            format_table(
                ["scheme", "recovery kbps", "2s-window kbps", "rec s", "RTOs", "rtx"],
                rows,
            )
        )
        lines.append("")
    lines.append(
        "paper shape: RR >= SACK >> New-Reno; Tahoe > New-Reno at 6 drops."
    )
    return "\n".join(lines)


def _kbps(bps: Optional[float]) -> str:
    return f"{bps / 1000:.1f}" if bps is not None else "-"


def main() -> None:  # pragma: no cover - CLI glue
    print(format_report(run_figure5()))


if __name__ == "__main__":  # pragma: no cover
    main()
