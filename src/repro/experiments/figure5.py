"""Figure 5: effective throughput during recovery from 3 / 6 packet
losses within one window, drop-tail gateways.

Paper setup (Table 3 + Section 3.2): dumbbell, bottleneck 0.8 Mb/s,
drop-tail buffer, side links 10 Mb/s, FTP traffic, ACK per packet.  The
paper engineered deterministic 3-drop and 6-drop windows for flow 1 via
two background flows and an 8-packet buffer; we inject the drops
deterministically instead (same determinism, no tuning fragility — see
DESIGN.md §4) with the buffer at 25 packets so the *only* losses are
the engineered ones, and cap the pre-loss window around 20 packets via
the initial ssthresh (the regime of Fig. 6, "bursty packet losses occur
after cwnd reaches 16").

Two effective-throughput readings are reported per scheme:

* ``recovery`` — goodput from loss detection until the cumulative ACK
  first covers everything sent before the loss (the recovery period);
* ``window2s`` — goodput over a fixed 2 s window from loss detection,
  which also captures how well each scheme's exit state carries into
  congestion avoidance.

Expected shape (paper): RR ≈/≥ SACK >> New-Reno; for 6 drops Tahoe
beats New-Reno ("Tahoe is more robust than New-Reno in case of high
bursty losses").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, PAPER_VARIANTS, build_dumbbell_scenario
from repro.metrics.throughput import (
    goodput_bps,
    loss_recovery_span,
    loss_recovery_throughput,
)
from repro.net.loss import DeterministicLoss
from repro.net.topology import DumbbellParams
from repro.runner import SweepRunner, TaskSpec
from repro.viz.ascii import format_table


@dataclass
class Figure5Config:
    """Knobs for the Figure 5 harness (defaults = paper values)."""

    variants: Sequence[str] = tuple(PAPER_VARIANTS)
    drop_counts: Sequence[int] = (3, 6)
    first_drop_seq: int = 100
    transfer_packets: int = 600
    buffer_packets: int = 25
    pre_loss_window: int = 20      # via initial ssthresh
    fixed_window_seconds: float = 2.0
    sim_duration: float = 120.0


@dataclass
class Figure5Row:
    variant: str
    drops: int
    recovery_throughput_bps: Optional[float]
    window_throughput_bps: Optional[float]
    recovery_duration: Optional[float]
    timeouts: int
    retransmits: int
    completed: bool
    complete_time: Optional[float]


@dataclass
class Figure5Result:
    config: Figure5Config
    rows: List[Figure5Row] = field(default_factory=list)

    def row(self, variant: str, drops: int) -> Figure5Row:
        for row in self.rows:
            if row.variant == variant and row.drops == drops:
                return row
        raise KeyError((variant, drops))


def run_single(variant: str, n_drops: int, config: Figure5Config) -> Figure5Row:
    """Run one (variant, drop-count) cell of Figure 5."""
    drops = [(1, config.first_drop_seq + i) for i in range(n_drops)]
    loss = DeterministicLoss(drops)
    tcp_config = TcpConfig(
        receiver_window=64, initial_ssthresh=float(config.pre_loss_window)
    )
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=config.transfer_packets)],
        params=DumbbellParams(n_pairs=1, buffer_packets=config.buffer_packets),
        default_config=tcp_config,
        forward_loss=loss,
    )
    scenario.sim.run(until=config.sim_duration)
    sender, stats = scenario.flow(1)
    span = loss_recovery_span(stats)
    recovery_bps = loss_recovery_throughput(stats, tcp_config.mss_bytes)
    window_bps = None
    duration = None
    if span is not None:
        t_start, t_end, _ = span
        duration = t_end - t_start
        window_bps = goodput_bps(
            stats, t_start, t_start + config.fixed_window_seconds, tcp_config.mss_bytes
        )
    return Figure5Row(
        variant=variant,
        drops=n_drops,
        recovery_throughput_bps=recovery_bps,
        window_throughput_bps=window_bps,
        recovery_duration=duration,
        timeouts=sender.timeouts,
        retransmits=sender.retransmits,
        completed=sender.completed,
        complete_time=sender.complete_time,
    )


def run_figure5(
    config: Optional[Figure5Config] = None, runner: Optional[SweepRunner] = None
) -> Figure5Result:
    """Regenerate both panels of Figure 5."""
    config = config or Figure5Config()
    runner = runner or SweepRunner()
    result = Figure5Result(config=config)
    specs = [
        TaskSpec(
            fn="repro.experiments.figure5:run_single",
            args=(variant, n_drops, config),
            label=f"fig5 {variant}/{n_drops}-drop",
        )
        for n_drops in config.drop_counts
        for variant in config.variants
    ]
    result.rows.extend(runner.map(specs))
    return result


def format_report(result: Figure5Result) -> str:
    """Render the paper-vs-measured comparison."""
    lines = [
        "Figure 5 — effective throughput during congestion recovery",
        "(drop-tail; deterministic 3/6 packet drops within one window)",
        "",
    ]
    for n_drops in result.config.drop_counts:
        rows = []
        for variant in result.config.variants:
            row = result.row(variant, n_drops)
            rows.append(
                [
                    variant,
                    _kbps(row.recovery_throughput_bps),
                    _kbps(row.window_throughput_bps),
                    f"{row.recovery_duration:.2f}" if row.recovery_duration else "-",
                    row.timeouts,
                    row.retransmits,
                ]
            )
        lines.append(f"--- {n_drops} packet losses in a window ---")
        lines.append(
            format_table(
                ["scheme", "recovery kbps", "2s-window kbps", "rec s", "RTOs", "rtx"],
                rows,
            )
        )
        lines.append("")
    lines.append(
        "paper shape: RR >= SACK >> New-Reno; Tahoe > New-Reno at 6 drops."
    )
    return "\n".join(lines)


def _kbps(bps: Optional[float]) -> str:
    return f"{bps / 1000:.1f}" if bps is not None else "-"


def main() -> None:  # pragma: no cover - CLI glue
    print(format_report(run_figure5()))


if __name__ == "__main__":  # pragma: no cover
    main()
