"""Declarative scenarios: describe a run as a dict / JSON file, get a
:class:`~repro.experiments.common.ScenarioResult` back.

This is the batch interface for users who want to sweep configurations
without writing Python — the schema covers the dumbbell topology, the
queue discipline, loss/reordering injection and the flow list:

```json
{
  "topology": {"n_pairs": 2, "buffer_packets": 25,
               "bottleneck_bandwidth_mbps": 0.8, "bottleneck_delay_ms": 50},
  "queue": {"kind": "red", "min_th": 5, "max_th": 20, "max_p": 0.02,
            "weight": 0.002, "ecn": false},
  "loss": {"kind": "uniform", "rate": 0.01},
  "ack_loss": {"rate": 0.05},
  "jitter": {"max_ms": 10},
  "outage": {"start": 2.0, "duration": 0.15},
  "tcp": {"receiver_window": 64, "initial_ssthresh": 20},
  "flows": [
    {"variant": "rr", "packets": 400},
    {"variant": "reno", "start": 0.5}
  ],
  "seed": 7,
  "duration": 60.0
}
```

Every section except ``flows`` is optional.  ``run_scenario_file``
loads JSON from disk; ``run_scenario`` takes the dict directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.config import TcpConfig
from repro.errors import ConfigurationError
from repro.experiments.common import FlowSpec, ScenarioResult, build_dumbbell_scenario
from repro.net.loss import AckLoss, DeterministicLoss, GilbertElliott, UniformLoss
from repro.net.red import RedParams, RedQueue
from repro.net.topology import DumbbellParams
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream

PathLike = Union[str, Path]


def _topology(spec: Dict[str, Any]) -> DumbbellParams:
    kwargs: Dict[str, Any] = {}
    if "n_pairs" in spec:
        kwargs["n_pairs"] = int(spec["n_pairs"])
    if "buffer_packets" in spec:
        kwargs["buffer_packets"] = int(spec["buffer_packets"])
    if "bottleneck_bandwidth_mbps" in spec:
        kwargs["bottleneck_bandwidth_bps"] = float(spec["bottleneck_bandwidth_mbps"]) * 1e6
    if "bottleneck_delay_ms" in spec:
        kwargs["bottleneck_delay"] = float(spec["bottleneck_delay_ms"]) / 1000.0
    if "side_bandwidth_mbps" in spec:
        kwargs["side_bandwidth_bps"] = float(spec["side_bandwidth_mbps"]) * 1e6
    if "side_delay_ms" in spec:
        kwargs["side_delay"] = float(spec["side_delay_ms"]) / 1000.0
    if "sender_side_delays_ms" in spec:
        kwargs["sender_side_delays"] = [
            float(d) / 1000.0 for d in spec["sender_side_delays_ms"]
        ]
    if "symmetric_bottleneck" in spec:
        kwargs["symmetric_bottleneck"] = bool(spec["symmetric_bottleneck"])
    return DumbbellParams(**kwargs)


def _loss(spec: Dict[str, Any], rng: RngStream):
    kind = spec.get("kind", "uniform")
    if kind == "uniform":
        return UniformLoss(float(spec["rate"]), rng.substream("loss"))
    if kind == "deterministic":
        drops = [(int(f), int(s)) for f, s in spec["drops"]]
        return DeterministicLoss(drops)
    if kind == "gilbert-elliott":
        return GilbertElliott(
            rng.substream("loss"),
            p_good_to_bad=float(spec.get("p_good_to_bad", 0.01)),
            p_bad_to_good=float(spec.get("p_bad_to_good", 0.3)),
            p_good=float(spec.get("p_good", 0.0)),
            p_bad=float(spec.get("p_bad", 0.5)),
        )
    raise ConfigurationError(f"unknown loss kind {kind!r}")


def run_scenario(spec: Dict[str, Any]) -> ScenarioResult:
    """Build and run a scenario described by ``spec``.

    Returns the :class:`ScenarioResult` after running to ``duration``
    (default 60 s).
    """
    if "flows" not in spec or not spec["flows"]:
        raise ConfigurationError("scenario needs a non-empty 'flows' list")
    seed = int(spec.get("seed", 0))
    rng = RngStream(seed, "scenario")
    sim = Simulator()

    params = _topology(spec.get("topology", {}))
    tcp_config = TcpConfig(**spec.get("tcp", {})) if spec.get("tcp") else None
    if tcp_config is not None:
        tcp_config.validate()

    queue_factory = None
    queue_spec = spec.get("queue")
    if queue_spec is not None:
        kind = queue_spec.get("kind", "droptail")
        if kind == "red":
            red_params = RedParams(
                min_th=float(queue_spec.get("min_th", 5)),
                max_th=float(queue_spec.get("max_th", 20)),
                max_p=float(queue_spec.get("max_p", 0.02)),
                weight=float(queue_spec.get("weight", 0.002)),
                limit=int(queue_spec.get("limit", params.buffer_packets)),
                ecn=bool(queue_spec.get("ecn", False)),
            )
            queue_factory = lambda name: RedQueue(
                sim, red_params, rng.substream(name), name=name
            )
        elif kind == "fq":
            from repro.net.fairqueue import FairQueue

            quantum = int(queue_spec.get("quantum_bytes", 1000))
            limit = int(queue_spec.get("limit", params.buffer_packets))
            queue_factory = lambda name: FairQueue(
                limit=limit, quantum_bytes=quantum, name=name
            )
        elif kind != "droptail":
            raise ConfigurationError(f"unknown queue kind {kind!r}")

    forward_loss = _loss(spec["loss"], rng) if spec.get("loss") else None
    reverse_loss = None
    if spec.get("ack_loss"):
        reverse_loss = AckLoss(
            rate=float(spec["ack_loss"]["rate"]), rng=rng.substream("ackloss")
        )

    flows = []
    for flow_spec in spec["flows"]:
        flows.append(
            FlowSpec(
                variant=flow_spec.get("variant", "rr"),
                start_time=float(flow_spec.get("start", 0.0)),
                amount_packets=(
                    int(flow_spec["packets"]) if "packets" in flow_spec else None
                ),
            )
        )

    scenario = build_dumbbell_scenario(
        flows=flows,
        params=params,
        default_config=tcp_config,
        bottleneck_queue_factory=queue_factory,
        forward_loss=forward_loss,
        reverse_loss=reverse_loss,
        sim=sim,
    )
    if spec.get("jitter"):
        from repro.net.reorder import JitterReorderer

        scenario.dumbbell.forward_link.reorder = JitterReorderer(
            rng.substream("jitter"),
            max_jitter=float(spec["jitter"]["max_ms"]) / 1000.0,
        )
    if spec.get("outage"):
        outage = spec["outage"]
        scenario.dumbbell.forward_link.schedule_outage(
            start=float(outage["start"]), duration=float(outage["duration"])
        )
    scenario.sim.run(until=float(spec.get("duration", 60.0)))
    return scenario


def run_scenario_file(path: PathLike) -> ScenarioResult:
    """Load a JSON scenario description and run it."""
    spec = json.loads(Path(path).read_text())
    return run_scenario(spec)


def summarize_scenario(scenario: ScenarioResult) -> Dict[str, Any]:
    """A JSON-friendly per-flow summary of a finished scenario."""
    flows = {}
    for flow_id, sender in scenario.senders.items():
        stats = scenario.stats[flow_id]
        flows[str(flow_id)] = {
            "variant": sender.variant,
            "completed": sender.completed,
            "complete_time": sender.complete_time,
            "final_ack": stats.final_ack,
            "packets_sent": sender.packets_sent,
            "retransmits": sender.retransmits,
            "timeouts": sender.timeouts,
            "drops_observed": stats.drops_observed,
        }
    return {"time": scenario.sim.now, "flows": flows}
