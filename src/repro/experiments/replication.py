"""Multi-seed replication: run a seeded scenario across seeds and
summarise with mean / standard deviation / a normal-approximation
confidence interval.

The RED and random-loss experiments are stochastic; single-seed numbers
(which the paper reports) can mislead.  ``replicate`` is the harness
the benches use to state results as ``mean ± half-width``.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

# two-sided z quantiles for the usual confidence levels
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class Summary:
    """Aggregate of one metric across seeds."""

    n: int
    mean: float
    stdev: float
    ci_half_width: float
    minimum: float
    maximum: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_half_width

    def __str__(self) -> str:
        return f"{self.mean:.3g} ± {self.ci_half_width:.2g} (n={self.n})"


def summarize(values: Sequence[float], confidence: float = 0.95) -> Summary:
    """Summarise raw values; CI uses the normal approximation (fine for
    the n >= 5 replications the harnesses run)."""
    xs = [float(v) for v in values]
    if not xs:
        raise ValueError("summarize() needs at least one value")
    mean = statistics.fmean(xs)
    stdev = statistics.stdev(xs) if len(xs) > 1 else 0.0
    z = _Z.get(confidence)
    if z is None:
        raise ValueError(f"unsupported confidence level {confidence}")
    half = z * stdev / math.sqrt(len(xs)) if len(xs) > 1 else 0.0
    return Summary(
        n=len(xs),
        mean=mean,
        stdev=stdev,
        ci_half_width=half,
        minimum=min(xs),
        maximum=max(xs),
    )


def replicate(
    run: Callable[[int], Dict[str, float]],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> Dict[str, Summary]:
    """Run ``run(seed)`` for every seed and summarise each metric.

    ``run`` returns a flat dict of metric name -> value; every seed
    must return the same keys.
    """
    if not seeds:
        raise ValueError("replicate() needs at least one seed")
    collected: Dict[str, List[float]] = {}
    for seed in seeds:
        metrics = run(seed)
        if not collected:
            collected = {key: [] for key in metrics}
        if set(metrics) != set(collected):
            raise ValueError(
                f"seed {seed} returned keys {sorted(metrics)} != {sorted(collected)}"
            )
        for key, value in metrics.items():
            collected[key].append(float(value))
    return {key: summarize(values, confidence) for key, values in collected.items()}


def format_summaries(summaries: Dict[str, Summary]) -> str:
    """Readable one-line-per-metric rendering."""
    width = max(len(k) for k in summaries) if summaries else 0
    return "\n".join(f"{key.ljust(width)}  {summaries[key]}" for key in sorted(summaries))
