"""Table 5: fairness — RR interoperating with TCP Reno.

Paper setup (Section 5): the drop-tail dumbbell with a 25-packet buffer
and 0.8 Mb/s bottleneck shared by 20 connections.  Nineteen background
connections have infinite data and staggered starts (first at t=0, one
more every 0.5 s); the targeted connection transfers a 100 KByte file
from S20 to K20 starting at t=4.8 s.  The transfer delay and packet
loss rate of the targeted connection are measured for the four (target
implementation, background implementation) combinations of {Reno, RR}.

Expected shape (paper Table 5):

* a Reno target is *not hurt* — in fact helped — when the background
  switches from Reno to RR (reduced synchronisation/fluctuation);
* an RR target among Renos sees lower delay and loss than the all-Reno
  baseline (paper row: 18.0 s, 11%) — by using bandwidth Reno leaves
  idle, not by stealing (Section 5's bandwidth accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.app.ftp import FtpSource
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.metrics.fairness import jain_index
from repro.metrics.flowstats import FlowStats
from repro.net.packet import set_uid_state
from repro.net.topology import DumbbellParams
from repro.runner import (
    PrefixSpec,
    SnapshotStore,
    SweepRunner,
    TaskSpec,
    load_prefix,
    warm_specs,
    warm_start_decision,
)
from repro.sim.rng import RngStream
from repro.tcp.factory import make_connection
from repro.viz.ascii import format_table


@dataclass
class Table5Config:
    """Knobs for the Table 5 harness (defaults = paper values)."""

    cases: Sequence[Tuple[str, str]] = (
        ("reno", "reno"),
        ("reno", "rr"),
        ("rr", "rr"),
        ("rr", "reno"),
    )
    n_connections: int = 20
    stagger_seconds: float = 0.5
    target_bytes: int = 100_000
    target_start: float = 4.8
    buffer_packets: int = 25
    sim_duration: float = 180.0
    # The 20-flow drop-tail system is chaotic: tiny phase changes flip
    # individual runs.  Each case is replicated with jittered background
    # start times and the mean is reported (the paper reports one run of
    # an unpublished background mix; means are the comparable statistic).
    runs_per_case: int = 5
    start_jitter: float = 0.1
    seed: int = 17
    # Warm-start capture point: the background system is frozen this
    # many seconds *before* the target starts, leaving room to attach
    # the target connection (whose FTP source schedules an absolute
    # start event) while the prefix stays target-agnostic.
    attach_margin: float = 0.25


@dataclass
class Table5Row:
    target_variant: str
    background_variant: str
    transfer_delay: Optional[float]   # mean across replications
    loss_rate: float                  # mean across replications
    timeouts: float                   # mean across replications
    retransmits: float
    background_jain: float   # fairness across background flows (extension)
    completed_runs: int = 0
    total_runs: int = 0


@dataclass
class Table5Result:
    config: Table5Config
    rows: List[Table5Row] = field(default_factory=list)


def prefix_world(background_variant: str, run_index: int, config: Table5Config):
    """Build the 19-background-flow system (with the target's host pair
    wired but unused) and run it to just before the target starts.

    The prefix is *target-agnostic*: both target variants of one
    ``(background, run)`` replication fork the same frozen world and
    attach their own target connection (:func:`_attach_target`).
    """
    set_uid_state(1)
    n_background = config.n_connections - 1
    rng = RngStream(config.seed + run_index, "table5-jitter")
    flows = [
        FlowSpec(
            variant=background_variant,
            start_time=i * config.stagger_seconds
            + (rng.uniform(0.0, config.start_jitter) if run_index else 0.0),
            amount_packets=None,
        )
        for i in range(n_background)
    ]
    scenario = build_dumbbell_scenario(
        flows=flows,
        params=DumbbellParams(
            n_pairs=config.n_connections, buffer_packets=config.buffer_packets
        ),
    )
    scenario.sim.run(until=max(config.target_start - config.attach_margin, 0.0))
    return scenario


def prefix_spec(
    background_variant: str, run_index: int, config: Table5Config
) -> PrefixSpec:
    return PrefixSpec(
        fn="repro.experiments.table5:prefix_world",
        args=(background_variant, run_index, config),
        label=f"table5 warm prefix {background_variant}/run{run_index}",
    )


def _attach_target(scenario, target_variant: str, config: Table5Config):
    """Wire the targeted connection onto host pair ``n_connections`` of
    a prefix world — the Table-5 reprogram step."""
    flow_id = config.n_connections
    mss = 1000  # paper MSS; TcpConfig default
    target_packets = (config.target_bytes + mss - 1) // mss
    bell = scenario.dumbbell
    stats = FlowStats(flow_id=flow_id)
    stats.watch_drops(bell.net.trace)
    sender, receiver = make_connection(
        scenario.sim,
        target_variant,
        flow_id,
        bell.sender(flow_id),
        bell.receiver(flow_id),
        config=None,
        observer=stats,
        trace=bell.net.trace,
    )
    source = FtpSource(
        scenario.sim,
        sender,
        amount_packets=target_packets,
        start_time=config.target_start,
    )
    scenario.senders[flow_id] = sender
    scenario.receivers[flow_id] = receiver
    scenario.stats[flow_id] = stats
    scenario.sources[flow_id] = source
    return scenario


def _finish_replica(scenario, config: Table5Config):
    """Run an attached replication to the end and measure the target."""
    target_id = config.n_connections
    target_sender = scenario.senders[target_id]
    scenario.sim.run(until=config.sim_duration)

    target_stats = scenario.stats[target_id]
    delay = (
        target_sender.complete_time - config.target_start
        if target_sender.complete_time is not None
        else None
    )
    background_goodputs = [
        scenario.stats[i].final_ack for i in range(1, config.n_connections)
    ]
    return (
        delay,
        target_stats.loss_rate(),
        target_sender.timeouts,
        target_sender.retransmits,
        jain_index(background_goodputs),
    )


def run_replica(
    target_variant: str, background_variant: str, config: Table5Config, run_index: int
):
    """One replication; returns (delay|None, loss, timeouts, rtx, jain)."""
    scenario = _attach_target(
        prefix_world(background_variant, run_index, config), target_variant, config
    )
    return _finish_replica(scenario, config)


def run_replica_from_snapshot(
    digest: str,
    target_variant: str,
    background_variant: str,
    config: Table5Config,
    run_index: int,
    store_root: Optional[str] = None,
):
    """One replication warm-started from the frozen background system."""
    scenario = load_prefix(digest, store_root, verify=False)
    return _finish_replica(_attach_target(scenario, target_variant, config), config)


def _reduce_case(
    target_variant: str, background_variant: str, config: Table5Config, replicas
) -> Table5Row:
    """Aggregate the replications of one (target, background) cell."""
    delays, losses, timeouts, retransmits, jains = [], [], [], [], []
    completed = 0
    for delay, loss, n_timeouts, n_retransmits, jain in replicas:
        if delay is not None:
            delays.append(delay)
            completed += 1
        losses.append(loss)
        timeouts.append(n_timeouts)
        retransmits.append(n_retransmits)
        jains.append(jain)
    n = len(losses)
    return Table5Row(
        target_variant=target_variant,
        background_variant=background_variant,
        transfer_delay=sum(delays) / len(delays) if delays else None,
        loss_rate=sum(losses) / n,
        timeouts=sum(timeouts) / n,
        retransmits=sum(retransmits) / n,
        background_jain=sum(jains) / n,
        completed_runs=completed,
        total_runs=n,
    )


def run_case(target_variant: str, background_variant: str, config: Table5Config) -> Table5Row:
    """One (target, background) cell of Table 5 (mean of replications)."""
    replicas = [
        run_replica(target_variant, background_variant, config, run_index)
        for run_index in range(config.runs_per_case)
    ]
    return _reduce_case(target_variant, background_variant, config, replicas)


def run_table5(
    config: Optional[Table5Config] = None,
    runner: Optional[SweepRunner] = None,
    warm_start: bool = False,
    store: Optional[SnapshotStore] = None,
    manifest: Optional["RunManifest"] = None,
) -> Table5Result:
    """Regenerate all four cases of Table 5.

    With ``warm_start`` the sweep fans out per *replication* rather
    than per case: each (background, run) prefix — the chaotic 19-flow
    build-up — is simulated once and both target variants fork it, so
    the four-case grid needs ``2 x runs_per_case`` prefixes instead of
    ``4 x runs_per_case`` warm-ups, and rows stay bit-identical to the
    cold path.  Missing prefixes are captured in parallel over the
    runner's worker pool, so the first warm pass no longer serializes
    ten chaotic 19-flow warm-ups (ROADMAP: warm-start first-pass cost).
    """
    config = config or Table5Config()
    runner = runner or SweepRunner()
    result = Table5Result(config=config)
    if manifest is not None:
        manifest.describe_harness(
            "table5", config=config, seed=config.seed, warm_start=warm_start
        )
    cells = [
        (target_variant, background_variant, run_index)
        for target_variant, background_variant in config.cases
        for run_index in range(config.runs_per_case)
    ]
    prefix_for = lambda cell: prefix_spec(cell[1], cell[2], config)  # noqa: E731
    if warm_start:
        store = store or SnapshotStore()
        if warm_start != "force":
            # Hint: the prefix is the background build-up to just
            # before target_start of a sim_duration-second run — a few
            # percent by default, which is why warm table5 measured at
            # parity with cold (BENCH_experiments.json) before this
            # cost model existed.
            fraction = (
                max(config.target_start - config.attach_margin, 0.0)
                / config.sim_duration
            )
            decision = warm_start_decision(cells, prefix_for, fraction, store)
            if not decision.use_warm:
                if manifest is not None:
                    manifest.note_warm_start_skipped(decision.reason)
                warm_start = False
    if warm_start:
        store_arg = str(store.root)
        specs = warm_specs(
            cells,
            prefix_for=prefix_for,
            spec_for=lambda cell, digest: TaskSpec(
                fn="repro.experiments.table5:run_replica_from_snapshot",
                args=(digest, cell[0], cell[1], config, cell[2], store_arg),
                label=f"table5 {cell[0]}/{cell[1]}s run{cell[2]} (warm)",
            ),
            store=store,
            runner=runner,
        )
        if manifest is not None:
            manifest.note_warm_start(store)
        replicas = runner.map(specs)
        per_case = config.runs_per_case
        for case_index, (target_variant, background_variant) in enumerate(config.cases):
            chunk = replicas[case_index * per_case : (case_index + 1) * per_case]
            result.rows.append(
                _reduce_case(target_variant, background_variant, config, chunk)
            )
    else:
        specs = [
            TaskSpec(
                fn="repro.experiments.table5:run_case",
                args=(target_variant, background_variant, config),
                label=f"table5 {target_variant}/{background_variant}",
            )
            for target_variant, background_variant in config.cases
        ]
        result.rows.extend(runner.map(specs))
    return result


def format_report(result: Table5Result) -> str:
    lines = [
        "Table 5 — performance of the targeted TCP connection",
        "(20 connections, drop-tail buffer 25, 0.8 Mb/s; target sends 100 KB"
        " starting at 4.8 s)",
        "",
    ]
    rows = []
    for row in result.rows:
        rows.append(
            [
                f"{row.target_variant} / {row.background_variant}s",
                f"{row.transfer_delay:.1f}" if row.transfer_delay else "DNF",
                f"{row.loss_rate * 100:.1f}%",
                f"{row.timeouts:.1f}",
                f"{row.background_jain:.3f}",
                f"{row.completed_runs}/{row.total_runs}",
            ]
        )
    lines.append(
        format_table(
            ["target/background", "delay s", "loss", "RTOs", "bg Jain", "done"], rows
        )
    )
    lines.append(
        f"(means of {result.config.runs_per_case} replications with jittered"
        " background start times)"
    )
    lines.append("")
    lines.append(
        "paper shape: Reno target improves when background becomes RR; RR target"
        " among Renos gets lower delay & loss (paper: 18.0 s, 11%)."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI glue
    print(format_report(run_table5()))


if __name__ == "__main__":  # pragma: no cover
    main()
