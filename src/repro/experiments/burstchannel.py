"""Extension experiment: recovery schemes on a Gilbert-Elliott bursty
channel.

The paper's opening premise is that "bursty packet losses are reported
to be common" [18] and that surviving them without timeouts is the key
to TCP performance.  Figures 5/6 engineer specific bursts; this sweep
stresses the schemes on a *channel whose loss process is inherently
bursty* (two-state Markov), across mean burst lengths at a fixed
stationary loss rate.

Expected shape: at equal average loss, longer bursts hurt every scheme,
but the gap between {RR, SACK} and {New-Reno, Reno} widens with burst
length — exactly the regime the paper targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.metrics.throughput import effective_throughput_bps
from repro.net.loss import GilbertElliott
from repro.net.topology import DumbbellParams
from repro.runner import SweepRunner, TaskSpec
from repro.sim.rng import RngStream
from repro.viz.ascii import format_table


@dataclass
class BurstChannelConfig:
    variants: Sequence[str] = ("reno", "newreno", "sack", "rr")
    #: mean bad-state burst lengths to sweep (packets)
    burst_lengths: Sequence[float] = (1.0, 2.0, 4.0)
    target_loss_rate: float = 0.02
    p_bad: float = 0.5
    transfer_packets: int = 400
    runs_per_point: int = 3
    seed: int = 31
    sim_duration: float = 600.0


@dataclass
class BurstChannelRow:
    variant: str
    burst_length: float
    throughput_bps: float
    timeouts: float
    completed_ratio: float


@dataclass
class BurstChannelResult:
    config: BurstChannelConfig
    rows: List[BurstChannelRow] = field(default_factory=list)

    def cell(self, variant: str, burst_length: float) -> BurstChannelRow:
        return next(
            r for r in self.rows
            if r.variant == variant and r.burst_length == burst_length
        )


def _chain_params(target_rate: float, burst_length: float, p_bad: float):
    """Solve the two-state chain for a given stationary loss rate and
    mean bad-burst length: pi_bad * p_bad = target, E[burst] = 1/p_b2g.
    """
    p_bad_to_good = 1.0 / burst_length
    pi_bad = target_rate / p_bad
    # pi_bad = p_g2b / (p_g2b + p_b2g)  ->  p_g2b = pi_bad*p_b2g/(1-pi_bad)
    p_good_to_bad = pi_bad * p_bad_to_good / (1.0 - pi_bad)
    return p_good_to_bad, p_bad_to_good


def run_point(variant: str, burst_length: float, config: BurstChannelConfig) -> BurstChannelRow:
    p_g2b, p_b2g = _chain_params(config.target_loss_rate, burst_length, config.p_bad)
    throughputs, timeouts, completions = [], [], []
    for run in range(config.runs_per_point):
        # Stream name deliberately excludes the variant: every scheme
        # faces the same channel realization per seed (paired design).
        rng = RngStream(config.seed + run, f"ge-{burst_length}")
        channel = GilbertElliott(
            rng,
            p_good_to_bad=p_g2b,
            p_bad_to_good=p_b2g,
            p_bad=config.p_bad,
        )
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant=variant, amount_packets=config.transfer_packets)],
            params=DumbbellParams(n_pairs=1, buffer_packets=50),
            default_config=TcpConfig(receiver_window=64),
            forward_loss=channel,
        )
        scenario.sim.run(until=config.sim_duration)
        sender, stats = scenario.flow(1)
        throughputs.append(effective_throughput_bps(stats))
        timeouts.append(sender.timeouts)
        completions.append(1.0 if sender.completed else 0.0)
    n = len(throughputs)
    return BurstChannelRow(
        variant=variant,
        burst_length=burst_length,
        throughput_bps=sum(throughputs) / n,
        timeouts=sum(timeouts) / n,
        completed_ratio=sum(completions) / n,
    )


def run_burstchannel(
    config: Optional[BurstChannelConfig] = None,
    runner: Optional[SweepRunner] = None,
    manifest: Optional["RunManifest"] = None,
) -> BurstChannelResult:
    config = config or BurstChannelConfig()
    runner = runner or SweepRunner()
    result = BurstChannelResult(config=config)
    if manifest is not None:
        manifest.describe_harness("burst", config=config, seed=config.seed)
    specs = [
        TaskSpec(
            fn="repro.experiments.burstchannel:run_point",
            args=(variant, burst_length, config),
            label=f"burst {variant}/{burst_length}",
        )
        for variant in config.variants
        for burst_length in config.burst_lengths
    ]
    result.rows.extend(runner.map(specs))
    return result


def format_report(result: BurstChannelResult) -> str:
    config = result.config
    lines = [
        "Bursty-channel sweep — Gilbert-Elliott loss at fixed average rate",
        f"(stationary loss {config.target_loss_rate:.0%}, p_bad {config.p_bad},"
        f" {config.transfer_packets}-packet transfers, mean of"
        f" {config.runs_per_point} seeds)",
        "",
    ]
    rows = []
    for burst_length in config.burst_lengths:
        row: List[object] = [f"{burst_length:.0f}"]
        for variant in config.variants:
            cell = result.cell(variant, burst_length)
            row.append(f"{cell.throughput_bps / 1000:.0f}")
            row.append(f"{cell.timeouts:.1f}")
        rows.append(row)
    headers: List[str] = ["burst len"]
    for variant in config.variants:
        headers += [f"{variant} kbps", f"{variant} RTOs"]
    lines.append(format_table(headers, rows))
    lines.append("")
    lines.append(
        "expected: every scheme slows as bursts lengthen at the same average"
        " loss; the RR/SACK advantage over Reno/New-Reno widens."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI glue
    print(format_report(run_burstchannel()))


if __name__ == "__main__":  # pragma: no cover
    main()
