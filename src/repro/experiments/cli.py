"""Command-line entry point: ``python -m repro.experiments <id>``.

Experiment ids match DESIGN.md's experiment index: fig5, fig6, fig7,
table5, plus the extension studies (ackloss, ablation, vegas, burst),
the robustness harnesses (chaos, identify) and the scene sweep
(manyflow), or ``all``.  ``--quick`` shrinks sweeps for smoke runs;
``--out DIR`` additionally writes each report to ``DIR/<id>.txt``;
``--seeds`` / ``--variants`` size the chaos campaign (see
docs/FAULTS.md); ``--grid`` picks the identification scenario grid
(see docs/IDENTIFICATION.md).

Every experiment grid is executed through :mod:`repro.runner`:
``--jobs N`` fans the independent cells out over N worker processes
(bit-identical results at any N), and completed cells are memoized in
an on-disk cache keyed by task + code fingerprint, so repeating a run
is nearly free.  ``--no-cache`` forces recomputation; see
docs/PERFORMANCE.md.  ``--warm-start`` forks the warm-startable grids
from frozen prefixes, and ``--triage`` bisects chaos crashes from
frozen crash points; both are documented in docs/WARMSTART.md.

Every run writes a provenance manifest (plus a JSONL event log) to
``$REPRO_ARTIFACT_DIR/runs/<run_id>/``; ``--progress`` / ``--quiet``
force the live progress line on/off (default: only on a TTY) and
``--profile`` captures a cProfile per executed task and prints the
merged hot-function table.  See docs/OBSERVABILITY.md.

Fault tolerance (docs/RESILIENCE.md): ``--max-retries`` re-runs
failing cells on a deterministic backoff schedule, ``--task-timeout``
kills and retries cells that overrun a wall-clock deadline, and
``python -m repro.experiments fsck`` verifies/repairs the on-disk
result cache and snapshot store.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments import (
    ablation,
    ackloss,
    burstchannel,
    chaos,
    figure5,
    figure6,
    figure7,
    identify,
    manyflow,
    rivals,
    table5,
    vegas_decomposition,
)
from repro.obs import RunTelemetry
from repro.runner import ResultCache, SweepRunner


def _warm(args) -> bool:
    return bool(getattr(args, "warm_start", False))


def _run_fig5(args, runner, manifest=None):
    config = figure5.Figure5Config()
    if args.quick:
        config.transfer_packets = 300
        config.sim_duration = 30.0
    result = figure5.run_figure5(
        config, runner=runner, warm_start=_warm(args), manifest=manifest
    )
    return figure5.format_report(result), result, "fig5"


def _run_fig6(args, runner, manifest=None):
    config = figure6.Figure6Config()
    if args.quick:
        config.duration = 3.0
    result = figure6.run_figure6(
        config, runner=runner, warm_start=_warm(args), manifest=manifest
    )
    return figure6.format_report(result, plots=not args.quick), result, "fig6"


def _run_fig7(args, runner, manifest=None):
    config = figure7.Figure7Config()
    if args.quick:
        config.loss_rates = (0.01, 0.05, 0.1)
        config.duration = 30.0
        config.runs_per_point = 1
    result = figure7.run_figure7(
        config, runner=runner, warm_start=_warm(args), manifest=manifest
    )
    return figure7.format_report(result, plot=not args.quick), result, "fig7"


def _run_table5(args, runner, manifest=None):
    config = table5.Table5Config()
    if args.quick:
        config.sim_duration = 90.0
        config.runs_per_case = 2
    result = table5.run_table5(
        config, runner=runner, warm_start=_warm(args), manifest=manifest
    )
    return table5.format_report(result), result, "table5"


def _run_burst(args, runner, manifest=None):
    config = burstchannel.BurstChannelConfig()
    if args.quick:
        config.runs_per_point = 1
        config.transfer_packets = 200
    result = burstchannel.run_burstchannel(config, runner=runner, manifest=manifest)
    return burstchannel.format_report(result), result, "burst"


def _run_ackloss(args, runner, manifest=None):
    config = ackloss.AckLossConfig()
    if args.quick:
        config.ack_loss_rates = (0.0, 0.1)
        config.runs_per_point = 1
        config.sim_duration = 30.0
    result = ackloss.run_ackloss(
        config, runner=runner, warm_start=_warm(args), manifest=manifest
    )
    return ackloss.format_report(result), None, None


def _run_ablation(args, runner, manifest=None):
    config = ablation.AblationConfig()
    if args.quick:
        config.transfer_packets = 300
        config.sim_duration = 30.0
    return (
        ablation.format_report(
            ablation.run_ablation(config, runner=runner, manifest=manifest)
        ),
        None,
        None,
    )


def _run_vegas(args, runner, manifest=None):
    config = vegas_decomposition.VegasDecompositionConfig()
    if args.quick:
        config.transfer_packets = 200
        config.sim_duration = 60.0
    return vegas_decomposition.format_report(
        vegas_decomposition.run_vegas_decomposition(
            config, runner=runner, manifest=manifest
        )
    ), None, None


def _run_manyflow(args, runner, manifest=None):
    config = manyflow.ManyflowConfig()
    if getattr(args, "scene", None):
        config.family = args.scene
    if getattr(args, "delayed_ack", False):
        config.delayed_ack = True
    if getattr(args, "ecn", False):
        config.ecn = True
    if args.quick:
        config.flow_counts = (25,)
        config.max_ps = (0.02,)
        config.duration = 10.0
    result = manyflow.run_manyflow(
        config, runner=runner, warm_start=_warm(args), manifest=manifest
    )
    return manyflow.format_report(result), result, "manyflow"


def _run_rivals(args, runner, manifest=None):
    config = rivals.RivalsConfig()
    if getattr(args, "delayed_ack", False):
        config.force_delayed_ack = True
    if getattr(args, "ecn", False):
        config.force_ecn = True
    if args.quick:
        config.rivals = ("cubic", "relentless")
        config.regimes = ("delack", "ecn-red", "mobile")
        config.duration = 10.0
        config.model_loss_rates = (0.03,)
        config.model_duration = 40.0
    result = rivals.run_rivals(
        config, runner=runner, warm_start=_warm(args), manifest=manifest
    )
    return rivals.format_report(result), result, "rivals"


def _run_identify(args, runner, manifest=None):
    config = identify.IdentifyConfig()
    if getattr(args, "variants", None):
        config.variants = tuple(args.variants)
    if getattr(args, "grid", None):
        config.grid = args.grid
    result = identify.run_identify(config, runner=runner, manifest=manifest)
    report = identify.format_report(result)
    if result.diverged:
        # The CI smoke step leans on this: a variant behaving unlike
        # its declaration must fail the invocation, not just print.
        raise RuntimeError(
            f"{len(result.diverged)}/{len(result.rows)} runs identified as"
            f" a different variant than declared\n{report}"
        )
    return report, None, None


def _run_chaos(args, runner, manifest=None):
    config = chaos.ChaosConfig()
    if args.quick:
        config.seeds = 2
        config.variants = ("newreno", "rr")
        config.transfer_packets = 600
    if getattr(args, "seeds", None) is not None:
        config.seeds = args.seeds
    if getattr(args, "variants", None):
        config.variants = tuple(args.variants)
    if getattr(args, "triage", False):
        from repro.runner import SnapshotStore

        config.triage = True
        config.snapshot_store_root = str(SnapshotStore().root)
    return (
        chaos.format_report(chaos.run_chaos(config, runner=runner, manifest=manifest)),
        None,
        None,
    )


EXPERIMENTS = {
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "table5": _run_table5,
    "ackloss": _run_ackloss,
    "ablation": _run_ablation,
    "vegas": _run_vegas,
    "burst": _run_burst,
    "chaos": _run_chaos,
    "manyflow": _run_manyflow,
    "rivals": _run_rivals,
    "identify": _run_identify,
}

#: One-line descriptions for ``--list``.
DESCRIPTIONS = {
    "fig5": "effective throughput during 3/6-drop recovery (drop-tail)",
    "fig6": "cwnd trajectories through a bursty-loss episode",
    "fig7": "goodput vs. uniform random loss rate at gateway R1",
    "table5": "multi-flow fairness/throughput shares on the dumbbell",
    "ackloss": "RR's linear degradation under reverse-path ACK loss (§2.3)",
    "ablation": "RR mechanism knock-outs (actnum/ndup/exit-point variants)",
    "vegas": "Vegas-decomposition extension study",
    "burst": "Gilbert-Elliott burst-channel extension study",
    "chaos": "fault-injection campaigns with invariants + watchdog",
    "manyflow": "generated scenes swept against the mean-field RED oracle",
    "rivals": "RR vs {Reno,NewReno,CUBIC,Relentless} under modern regimes",
    "identify": "trace-based variant identification vs the reference model",
}

#: Long-form spellings accepted on the command line.
ALIASES = {"figure5": "fig5", "figure6": "fig6", "figure7": "fig7"}


def format_listing() -> str:
    """The ``--list`` output: every experiment id + description."""
    width = max(len(name) for name in EXPERIMENTS)
    lines = ["available experiments (python -m repro.experiments <id>):"]
    for name in sorted(EXPERIMENTS):
        lines.append(f"  {name:<{width}}  {DESCRIPTIONS[name]}")
    alias_bits = ", ".join(f"{a}={t}" for a, t in sorted(ALIASES.items()))
    lines.append(f"  {'all':<{width}}  run every experiment above")
    lines.append(f"aliases: {alias_bits}")
    from repro.scenes import describe_families

    lines.append("scene families (manyflow --scene <family>):")
    lines.append(describe_families())
    lines.append("snapshot tools: python -m repro.experiments snapshot --help")
    lines.append("storage fsck:   python -m repro.experiments fsck --help")
    return "\n".join(lines)


def build_runner(
    jobs: int = 1,
    cache: bool = True,
    max_retries: int = 1,
    task_timeout: Optional[float] = None,
) -> SweepRunner:
    """The CLI's sweep runner: N workers + the default on-disk cache,
    with one deterministic retry per failing cell by default (see
    docs/RESILIENCE.md; ``--max-retries 0`` restores fail-fast)."""
    from repro.runner import RetryPolicy

    policy = RetryPolicy(max_retries=max_retries) if max_retries > 0 else None
    return SweepRunner(
        jobs=jobs,
        cache=ResultCache() if cache else None,
        retry_policy=policy,
        task_timeout=task_timeout,
    )


def fsck_cli(argv: List[str]) -> int:
    """``python -m repro.experiments fsck ...``: verify (and repair)
    the on-disk result cache and snapshot store.

    Corrupt artifacts are quarantined, dangling prefix-index entries
    removed; ``--dry-run`` reports without touching anything and
    ``--rebuild`` additionally recomputes lost prefix snapshots from
    their recorded specs (see docs/RESILIENCE.md).  Exits non-zero when
    issues were found and left unrepaired.
    """
    from repro.runner import fsck

    parser = argparse.ArgumentParser(
        prog="repro-experiments fsck",
        description="Verify and self-heal the sweep result cache and"
        " snapshot store (see docs/RESILIENCE.md).",
    )
    parser.add_argument(
        "--cache-root",
        metavar="DIR",
        default=None,
        help="cache root to sweep (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="report issues without quarantining or removing anything",
    )
    parser.add_argument(
        "--rebuild",
        action="store_true",
        help="also recompute missing/corrupt prefix snapshots from their"
        " recorded prefix specs (writes to the store)",
    )
    args = parser.parse_args(argv)
    report = fsck(
        cache_root=Path(args.cache_root) if args.cache_root else None,
        repair=not args.dry_run,
        rebuild=args.rebuild,
    )
    print(report.summary())
    unrepaired = sum(
        1 for issue in report.issues if issue.action == "reported"
    )
    return 1 if unrepaired else 0


def snapshot_cli(argv: List[str]) -> int:
    """``python -m repro.experiments snapshot <verb> ...``.

    ``capture`` runs a variant's golden scenario to ``--checkpoint-at T``
    and writes the frozen world to ``--out``; ``inspect`` prints a
    snapshot file's header without loading the payload; ``run`` resumes
    a snapshot (``--from-snapshot``) and simulates to ``--until`` (or
    until the event queue drains); ``diff`` compares two snapshot files
    (per-section byte drift, delta-encoding size, and the semantic
    state-fingerprint diff of the restored worlds).
    """
    from repro.snapshot import Snapshot, build_golden_scenario
    from repro.tcp.factory import VARIANTS

    parser = argparse.ArgumentParser(
        prog="repro-experiments snapshot",
        description="Checkpoint, inspect and resume frozen simulations"
        " (see docs/SNAPSHOT.md).",
    )
    sub = parser.add_subparsers(dest="verb", required=True)
    cap = sub.add_parser(
        "capture",
        help="run a variant's golden scenario to T and freeze it",
    )
    cap.add_argument("variant", choices=sorted(VARIANTS))
    cap.add_argument(
        "--checkpoint-at",
        type=float,
        required=True,
        metavar="T",
        help="simulation time (seconds) to capture at",
    )
    cap.add_argument("--out", required=True, metavar="PATH")
    insp = sub.add_parser("inspect", help="print a snapshot file's header")
    insp.add_argument("path", metavar="PATH")
    runp = sub.add_parser("run", help="resume a snapshot and simulate onward")
    runp.add_argument("--from-snapshot", required=True, metavar="PATH")
    runp.add_argument(
        "--until",
        type=float,
        default=None,
        metavar="T",
        help="absolute simulation time to stop at (default: drain the queue)",
    )
    diffp = sub.add_parser("diff", help="compare two snapshot files")
    diffp.add_argument("base", metavar="BASE")
    diffp.add_argument("target", metavar="TARGET")
    diffp.add_argument(
        "--semantic",
        action="store_true",
        help="also restore both worlds and diff their per-attribute"
        " state fingerprints (slower; mutates nothing on disk)",
    )
    args = parser.parse_args(argv)

    if args.verb == "capture":
        scenario = build_golden_scenario(args.variant)
        scenario.sim.run(until=args.checkpoint_at)
        snapshot = Snapshot.capture(
            scenario, label=f"golden {args.variant} @ t={args.checkpoint_at:g}"
        )
        path = snapshot.save(args.out)
        print(
            f"captured {args.variant} at t={snapshot.sim_time:g} -> {path}\n"
            f"  digest {snapshot.digest}\n"
            f"  {snapshot.nbytes} bytes, "
            f"{snapshot.info.events_processed} events processed"
        )
        return 0
    if args.verb == "inspect":
        info = Snapshot.read_info(args.path)
        print(
            f"{args.path}: format {info.format}, label {info.label!r}\n"
            f"  t={info.sim_time:g}, {info.events_processed} events processed\n"
            f"  digest {info.digest}"
        )
        return 0
    if args.verb == "diff":
        return _snapshot_diff(args)
    # run
    world = Snapshot.load(args.from_snapshot).restore()
    fired = world.sim.run(until=args.until)
    print(
        f"resumed {args.from_snapshot}: fired {fired} events, "
        f"now t={world.sim.now:g}"
    )
    senders = getattr(world, "senders", None)
    if senders:
        for flow_id, sender in sorted(senders.items()):
            print(
                f"  flow {flow_id} ({sender.variant}): una={sender.snd_una} "
                f"cwnd={sender.cwnd:.2f} rtos={sender.timeouts} "
                f"{'done' if sender.completed else 'open'}"
            )
    return 0


def _snapshot_diff(args) -> int:
    """``snapshot diff BASE TARGET``: section drift + delta size, and
    optionally the semantic per-attribute fingerprint diff."""
    from repro.snapshot import Snapshot, state_fingerprints
    from repro.snapshot.delta import DeltaSnapshot, should_fall_back

    base = Snapshot.load(args.base)
    target = Snapshot.load(args.target)
    print(f"base:   {args.base}  t={base.sim_time:g}  digest {base.digest[:16]}…")
    print(f"target: {args.target}  t={target.sim_time:g}  digest {target.digest[:16]}…")
    if base.digest == target.digest:
        print("snapshots are identical (same state digest)")
        return 0
    base_sections = base.section_bytes()
    target_sections = target.section_bytes()
    print(f"{'section':<16} {'base B':>8} {'target B':>8}  drift")
    names = list(target_sections)
    names += [n for n in base_sections if n not in target_sections]
    for name in names:
        b = base_sections.get(name)
        t = target_sections.get(name)
        if b is None or t is None:
            drift = "only in " + ("target" if b is None else "base")
        elif b == t:
            drift = "identical"
        else:
            drift = "changed"
        print(f"{name:<16} {len(b) if b else 0:>8} {len(t) if t else 0:>8}  {drift}")
    delta = DeltaSnapshot.diff(target, base)
    pct = 100.0 * delta.nbytes / target.nbytes if target.nbytes else 0.0
    print(
        f"delta encoding (target vs base): {delta.nbytes} B vs {target.nbytes} B"
        f" full ({pct:.0f}%)"
        + ("; store would fall back to full" if should_fall_back(delta, target) else "")
    )
    if args.semantic:
        base_fp = state_fingerprints(base.restore(verify=False))
        target_fp = state_fingerprints(target.restore(verify=False))
        drifted = [
            k
            for k in sorted(set(base_fp) | set(target_fp))
            if base_fp.get(k) != target_fp.get(k)
        ]
        if drifted:
            print("semantic drift (state fingerprints):")
            for key in drifted:
                print(
                    f"  {key}: {base_fp.get(key, '-')[:12]} ->"
                    f" {target_fp.get(key, '-')[:12]}"
                )
        else:
            print("no semantic drift at the top level (byte-only differences)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "snapshot":
        return snapshot_cli(list(argv[1:]))
    if argv and argv[0] == "fsck":
        return fsck_cli(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of 'Robust TCP Congestion"
        " Recovery' (Wang & Shin, ICDCS 2001).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS) + sorted(ALIASES) + ["all", "snapshot", "fsck"],
        help="experiment id from DESIGN.md, 'snapshot' for the"
        " checkpoint tools, or 'fsck' for storage verification",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list every experiment with a one-line description and exit",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweeps for a fast smoke run"
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the sweep grid (default 1 = in-process)",
    )
    cache_group = parser.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache",
        dest="cache",
        action="store_true",
        default=True,
        help="memoize completed cells on disk (default; see docs/PERFORMANCE.md)",
    )
    cache_group.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="recompute every cell, ignore and do not write the cache",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="also write each report to DIR/<id>.txt",
    )
    parser.add_argument(
        "--warm-start",
        action="store_true",
        help="fig5/fig6/fig7/table5/ackloss/manyflow/rivals: fork each grid from frozen"
        " warm-up prefixes instead of re-simulating them (bit-identical"
        " rows; see docs/WARMSTART.md)",
    )
    parser.add_argument(
        "--scene",
        metavar="FAMILY",
        default=None,
        help="manyflow only: topology family to sweep (dumbbell,"
        " parkinglot, fattree, wan; see --list)",
    )
    parser.add_argument(
        "--delayed-ack",
        dest="delayed_ack",
        action="store_true",
        help="rivals/manyflow: enable RFC 1122 delayed ACKs at every"
        " receiver (recorded in the run manifest)",
    )
    parser.add_argument(
        "--ecn",
        dest="ecn",
        action="store_true",
        help="rivals/manyflow: negotiate ECN end-to-end (RED bottlenecks"
        " mark instead of early-dropping; recorded in the run manifest)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="chaos only: number of seeded campaigns per variant",
    )
    parser.add_argument(
        "--variants",
        nargs="+",
        metavar="VARIANT",
        default=None,
        help="chaos/identify: restrict to these TCP variants",
    )
    parser.add_argument(
        "--grid",
        choices=("heldout", "training", "both"),
        default=None,
        help="identify only: which labeled scenario grid to sweep"
        " (default heldout; see docs/IDENTIFICATION.md)",
    )
    parser.add_argument(
        "--triage",
        action="store_true",
        help="chaos only: on a watchdog/invariant trip, freeze the crash"
        " point and bisect it with/without the active fault"
        " (see docs/WARMSTART.md)",
    )
    progress_group = parser.add_mutually_exclusive_group()
    progress_group.add_argument(
        "--progress",
        dest="progress",
        action="store_true",
        default=None,
        help="force the live progress line on (default: only on a TTY)",
    )
    progress_group.add_argument(
        "--quiet",
        dest="progress",
        action="store_false",
        help="suppress the live progress line",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="capture a cProfile per executed task under"
        " runs/<run_id>/profiles/ and print the merged hot-function"
        " table (see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=1,
        metavar="N",
        help="deterministic retries per failing cell before it is"
        " quarantined (default 1; 0 = fail fast; see docs/RESILIENCE.md)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline per cell execution; an overrunning"
        " worker is killed and the cell retried under --max-retries"
        " (default: no deadline)",
    )
    args = parser.parse_args(argv)
    if args.list:
        print(format_listing())
        return 0
    if args.experiment is None:
        parser.error("an experiment id is required (or --list)")
    experiment = ALIASES.get(args.experiment, args.experiment)
    names = sorted(EXPERIMENTS) if experiment == "all" else [experiment]
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    runner = build_runner(
        jobs=args.jobs,
        cache=args.cache,
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
    )
    invocation = {
        "quick": args.quick,
        "jobs": args.jobs,
        "cache": args.cache,
        "warm_start": args.warm_start,
        "max_retries": args.max_retries,
        "task_timeout": args.task_timeout,
        "delayed_ack": args.delayed_ack,
        "ecn": args.ecn,
    }
    for name in names:
        telemetry = RunTelemetry(
            name, args=invocation, progress=args.progress, profile=args.profile
        )
        telemetry.attach(runner)
        try:
            report, result, export_id = EXPERIMENTS[name](
                args, runner, manifest=telemetry.manifest
            )
        except BaseException as error:
            telemetry.abort(error)
            raise
        finally:
            telemetry.detach(runner)
        manifest_path = telemetry.finish()
        print(f"===== {name} =====")
        print(report)
        stats = runner.stats
        if stats.total:
            print(
                f"[runner] {stats.total} cells: {stats.cache_hits} cached,"
                f" {stats.executed} executed on {stats.jobs} job(s)"
                f" in {stats.wall_seconds:.2f}s"
            )
        print(f"[manifest] {manifest_path}")
        if args.profile:
            profile_report = telemetry.profile_report()
            if profile_report:
                print(profile_report)
        print()
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(report + "\n")
            if result is not None and export_id is not None:
                from repro.experiments.export_results import export_result

                export_result(export_id, result, out_dir)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
