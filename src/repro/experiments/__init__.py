"""Experiment harnesses: one module per table/figure of the paper's
evaluation, plus extension studies (ACK loss, ablations).

Every harness exposes:

* a ``*Config`` dataclass with the paper's parameters as defaults,
* a ``run_*`` function returning a structured result object,
* a ``format_report`` function rendering the paper-vs-measured rows,

and is runnable from the command line via ``python -m repro.experiments
<id>`` (see :mod:`repro.experiments.cli`).
"""

from repro.experiments.chaos import ChaosConfig, run_chaos
from repro.experiments.common import ScenarioResult, build_dumbbell_scenario
from repro.experiments.figure5 import Figure5Config, run_figure5
from repro.experiments.figure6 import Figure6Config, run_figure6
from repro.experiments.figure7 import Figure7Config, run_figure7
from repro.experiments.manyflow import ManyflowConfig, run_manyflow
from repro.experiments.rivals import RivalsConfig, run_rivals
from repro.experiments.table5 import Table5Config, run_table5
from repro.experiments.ackloss import AckLossConfig, run_ackloss
from repro.experiments.ablation import AblationConfig, run_ablation
from repro.experiments.replication import Summary, format_summaries, replicate, summarize
from repro.experiments.vegas_decomposition import (
    VegasDecompositionConfig,
    run_vegas_decomposition,
)

__all__ = [
    "ChaosConfig",
    "run_chaos",
    "ScenarioResult",
    "build_dumbbell_scenario",
    "Figure5Config",
    "run_figure5",
    "Figure6Config",
    "run_figure6",
    "Figure7Config",
    "run_figure7",
    "ManyflowConfig",
    "run_manyflow",
    "RivalsConfig",
    "run_rivals",
    "Table5Config",
    "run_table5",
    "AckLossConfig",
    "run_ackloss",
    "AblationConfig",
    "run_ablation",
    "Summary",
    "summarize",
    "replicate",
    "format_summaries",
    "VegasDecompositionConfig",
    "run_vegas_decomposition",
]
