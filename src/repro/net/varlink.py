"""Time-varying links: rate schedules, handover outages, bufferbloat.

Mobile and wireless bottlenecks are nothing like the fixed wired links
of the paper's evaluation: the PHY rate wanders with signal quality,
handovers black the link out for hundreds of milliseconds, and
operator buffers are sized at many bandwidth-delay products (Liu et
al., *Optimizing TCP Loss Recovery Performance Over Mobile Data
Networks*, PAPERS.md).  This module models all three on top of the
existing :class:`~repro.net.link.Link`:

* :class:`RateSchedule` — a picklable, validated step function of
  absolute simulation time applied to a link's ``bandwidth_bps``, with
  optional deep outage windows that reuse the ``set_down``/``set_up``
  machinery.  Schedules are either hand-written (:meth:`steps_every`,
  :meth:`from_trace`) or drawn from a seeded
  :class:`~repro.sim.rng.RngStream` (:meth:`mobile`), so worlds stay a
  pure function of their seed and runs are bit-identical across
  reruns, serial/parallel sweeps and engine backends.
* :func:`bufferbloat_limit` / :func:`bufferbloat_queue` — DropTail
  sizing presets at a chosen multiple of the bandwidth-delay product.

Rate changes take effect at the *next* service start: the packet
occupying the transmitter when a step fires keeps the service time it
was admitted with (the event is already on the heap).  That keeps both
engine backends exactly equivalent and matches a modem that finishes
serialising the current frame before retuning.

Variable rate breaks the one-drain-per-busy-period invariant batched
egress relies on (a queued packet's service start depends on rates not
yet known when the drain was booked), so a scheduled link refuses
``enable_batched_egress`` and vice versa.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.net.queues import DropTailQueue
from repro.sim.rng import RngStream


@dataclass(frozen=True)
class RateSchedule:
    """A step function of absolute sim time driving a link's rate.

    Attributes
    ----------
    steps:
        ``(time, bandwidth_bps)`` pairs, strictly increasing in time,
        all rates positive.  Before the first step the link keeps its
        construction-time rate.
    outages:
        ``(start, duration)`` deep-outage windows (handovers); applied
        through :meth:`Link.schedule_outage`, so packets arriving
        inside a window are destroyed.
    """

    steps: Tuple[Tuple[float, float], ...]
    outages: Tuple[Tuple[float, float], ...] = ()

    def validate(self) -> None:
        last_t = -1.0
        for t, bps in self.steps:
            if t < 0:
                raise ConfigurationError(f"rate step at negative time {t}")
            if t <= last_t:
                raise ConfigurationError(
                    f"rate steps must be strictly increasing in time (t={t})"
                )
            if bps <= 0:
                raise ConfigurationError(f"rate step at t={t} has rate {bps} <= 0")
            last_t = t
        for start, duration in self.outages:
            if start < 0 or duration < 0:
                raise ConfigurationError(
                    f"outage ({start}, {duration}) must be non-negative"
                )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def steps_every(
        cls,
        rates_bps: Sequence[float],
        interval: float,
        start: float = 0.0,
        outages: Sequence[Tuple[float, float]] = (),
    ) -> "RateSchedule":
        """One step per entry of ``rates_bps``, ``interval`` s apart."""
        if interval <= 0:
            raise ConfigurationError("step interval must be > 0")
        steps = tuple(
            (start + i * interval, float(bps)) for i, bps in enumerate(rates_bps)
        )
        sched = cls(steps=steps, outages=tuple(outages))
        sched.validate()
        return sched

    @classmethod
    def from_trace(
        cls,
        samples: Iterable[Tuple[float, float]],
        outages: Sequence[Tuple[float, float]] = (),
    ) -> "RateSchedule":
        """Trace-driven: ``(time, bandwidth_bps)`` samples (sorted)."""
        steps = tuple((float(t), float(bps)) for t, bps in samples)
        sched = cls(steps=steps, outages=tuple(outages))
        sched.validate()
        return sched

    @classmethod
    def mobile(
        cls,
        seed: int,
        duration: float,
        mean_bps: float,
        interval: float = 1.0,
        spread: float = 0.6,
        min_bps: Optional[float] = None,
        handover_period: Optional[float] = None,
        handover_duration: float = 0.5,
        name: str = "mobile",
    ) -> "RateSchedule":
        """A seeded wireless-ish schedule: every ``interval`` seconds
        the rate is redrawn uniformly in ``mean_bps * [1-spread,
        1+spread]`` (floored at ``min_bps``, default ``mean/10``), and
        if ``handover_period`` is set, deep outages of
        ``handover_duration`` seconds recur roughly that often with
        seeded jitter.  All draws come from substreams of
        ``RngStream(seed, "ratesched/<name>")``.
        """
        if duration <= 0:
            raise ConfigurationError("schedule duration must be > 0")
        if not 0.0 <= spread < 1.0:
            raise ConfigurationError(f"spread must be in [0, 1), got {spread}")
        root = RngStream(seed, f"ratesched/{name}")
        rates = root.substream("rates")
        floor = min_bps if min_bps is not None else mean_bps / 10.0
        steps = []
        t = 0.0
        while t < duration:
            factor = 1.0 + spread * (2.0 * rates.random() - 1.0)
            steps.append((t, max(mean_bps * factor, floor)))
            t += interval
        outages = []
        if handover_period is not None:
            if handover_period <= 0:
                raise ConfigurationError("handover_period must be > 0")
            hand = root.substream("handover")
            t = handover_period * (0.5 + hand.random())
            while t < duration:
                outages.append((t, handover_duration))
                t += handover_period * (0.75 + 0.5 * hand.random())
        sched = cls(steps=tuple(steps), outages=tuple(outages))
        sched.validate()
        return sched

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def rate_at(self, t: float, default: Optional[float] = None) -> Optional[float]:
        """The scheduled rate at time ``t`` (``default`` before the
        first step)."""
        current = default
        for step_t, bps in self.steps:
            if step_t > t:
                break
            current = bps
        return current

    def min_rate(self) -> float:
        """The slowest scheduled rate (for BDP/oracle sizing)."""
        if not self.steps:
            raise ConfigurationError("empty rate schedule")
        return min(bps for _, bps in self.steps)

    def mean_rate(self) -> float:
        """Time-weighted mean rate over the scheduled span (the last
        step is weighted by the mean preceding interval)."""
        if not self.steps:
            raise ConfigurationError("empty rate schedule")
        if len(self.steps) == 1:
            return self.steps[0][1]
        total = 0.0
        for (t0, bps), (t1, _) in zip(self.steps, self.steps[1:]):
            total += bps * (t1 - t0)
        span = self.steps[-1][0] - self.steps[0][0]
        tail = span / (len(self.steps) - 1)
        return (total + self.steps[-1][1] * tail) / (span + tail)

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(self, link: Link) -> Link:
        """Schedule every step and outage against ``link`` and record
        the schedule on it (``link.rate_schedule``).

        Raises :class:`ConfigurationError` if the link is in batched
        egress mode or already carries a schedule.  Steps in the past
        (relative to ``link._sim.now``) are rejected — apply schedules
        before running the world.
        """
        self.validate()
        if getattr(link, "_batch", False):
            raise ConfigurationError(
                f"link {link.name}: rate schedules are incompatible with "
                "batched egress (variable rate breaks the one-drain-per-"
                "busy-period invariant)"
            )
        if link.rate_schedule is not None:
            raise ConfigurationError(f"link {link.name} already has a rate schedule")
        sim = link._sim
        for t, bps in self.steps:
            if t < sim.now:
                raise ConfigurationError(
                    f"rate step at t={t} is in the past (now={sim.now})"
                )
            sim.schedule_at(t, link.set_bandwidth, bps)
        for start, duration in self.outages:
            link.schedule_outage(start, duration)
        link.rate_schedule = self
        return link


# ----------------------------------------------------------------------
# bufferbloat presets
# ----------------------------------------------------------------------
def bufferbloat_limit(
    bandwidth_bps: float,
    rtt: float,
    multiple: float = 10.0,
    mss_bytes: int = 1000,
) -> int:
    """Buffer capacity (packets) at ``multiple`` bandwidth-delay
    products — operator gear is commonly sized at 5-20 BDP (Liu et
    al.), which is what turns mobile links into bufferbloat."""
    if bandwidth_bps <= 0 or rtt <= 0 or multiple <= 0 or mss_bytes <= 0:
        raise ConfigurationError("bufferbloat sizing needs positive inputs")
    bdp_packets = bandwidth_bps * rtt / (8.0 * mss_bytes)
    return max(int(math.ceil(bdp_packets * multiple)), 1)


def bufferbloat_queue(
    bandwidth_bps: float,
    rtt: float,
    multiple: float = 10.0,
    mss_bytes: int = 1000,
    name: str = "bloat",
) -> DropTailQueue:
    """A DropTail queue sized by :func:`bufferbloat_limit`."""
    return DropTailQueue(
        bufferbloat_limit(bandwidth_bps, rtt, multiple, mss_bytes), name=name
    )
