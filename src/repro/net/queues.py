"""Queue disciplines: the abstract interface and drop-tail FIFO.

A queue discipline decides, per arriving packet, whether to enqueue or
drop, and hands packets to the link in service order.  Buffer occupancy
is measured in packets (not bytes), matching the paper: "The window size
and buffer space at the gateways are measured in number of fixed-size
packets, instead of bytes" (Section 3.1).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.errors import ConfigurationError
from repro.net.packet import Packet

DropCallback = Callable[[Packet, str], None]


class PacketQueue:
    """Abstract queue discipline.

    Subclasses implement :meth:`enqueue`; the owning link calls
    :meth:`dequeue` when the output interface goes idle.

    Attributes
    ----------
    limit:
        Buffer capacity in packets.
    on_drop:
        Optional callback ``(packet, reason)`` invoked for every drop.
    """

    def __init__(self, limit: int, name: str = "queue"):
        if limit < 1:
            raise ConfigurationError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        self.name = name
        self.on_drop: Optional[DropCallback] = None
        self._items: Deque[Packet] = deque()
        self.drops = 0
        self.enqueues = 0
        self.dequeues = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    def enqueue(self, packet: Packet) -> bool:
        """Accept or drop ``packet``.  Returns True if enqueued."""
        raise NotImplementedError

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head-of-line packet (None if empty)."""
        if not self._items:
            return None
        self.dequeues += 1
        return self._items.popleft()

    def _accept(self, packet: Packet) -> bool:
        self._items.append(packet)
        self.enqueues += 1
        return True

    def _drop(self, packet: Packet, reason: str) -> bool:
        self.drops += 1
        if self.on_drop is not None:
            self.on_drop(packet, reason)
        return False

    def reset_counters(self) -> None:
        self.drops = 0
        self.enqueues = 0
        self.dequeues = 0


class DropTailQueue(PacketQueue):
    """FIFO with tail drop — the widely deployed gateway of Section 3.2."""

    def enqueue(self, packet: Packet) -> bool:
        items = self._items
        if len(items) >= self.limit:
            return self._drop(packet, "overflow")
        items.append(packet)  # _accept inlined: this is per-packet hot
        self.enqueues += 1
        return True
