"""Nodes: hosts (with protocol agents) and routers (with forwarding tables).

A :class:`Host` owns protocol :class:`Agent` objects keyed by flow id;
an arriving packet is handed to the agent registered for its flow.  A
:class:`Router` looks the destination up in its forwarding table and
pushes the packet onto the corresponding output link.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import TopologyError
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.engine import Simulator


class Agent:
    """Base class for protocol endpoints attached to a host.

    Subclasses (TCP senders/receivers, apps) override :meth:`receive`.
    The host calls :meth:`attach` when the agent is registered.
    """

    def __init__(self, flow_id: int):
        self.flow_id = flow_id
        self.host: Optional["Host"] = None

    def attach(self, host: "Host") -> None:
        self.host = host

    @property
    def local_name(self) -> str:
        if self.host is None:
            raise TopologyError("agent is not attached to a host")
        return self.host.name

    def send(self, packet: Packet) -> None:
        """Hand a packet to the attached host for forwarding."""
        if self.host is None:
            raise TopologyError("agent is not attached to a host")
        self.host.send(packet)

    def receive(self, packet: Packet) -> None:
        raise NotImplementedError


class Node:
    """Common behaviour of hosts and routers."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        # next-hop forwarding: destination node name -> output link
        self.routes: Dict[str, Link] = {}
        self.packets_received = 0

    def add_route(self, dst_name: str, link: Link) -> None:
        self.routes[dst_name] = link

    def _forward(self, packet: Packet) -> None:
        link = self.routes.get(packet.dst)
        if link is None:
            # Compact tables (Network.compute_routes(compact=True)) give
            # single-homed nodes one "*" default route instead of an
            # entry per destination.
            link = self.routes.get("*")
            if link is None:
                raise TopologyError(f"{self.name}: no route to {packet.dst}")
        link.send(packet)

    def send(self, packet: Packet) -> None:
        self._forward(packet)

    def receive(self, packet: Packet) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Host(Node):
    """An end host: terminates flows via registered agents."""

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self._agents: Dict[int, Agent] = {}

    def register(self, agent: Agent) -> None:
        """Attach ``agent``; packets of its flow id will be delivered
        to it."""
        if agent.flow_id in self._agents:
            raise TopologyError(
                f"{self.name}: flow {agent.flow_id} already has an agent"
            )
        self._agents[agent.flow_id] = agent
        agent.attach(self)

    def agent_for(self, flow_id: int) -> Agent:
        try:
            return self._agents[flow_id]
        except KeyError:
            raise TopologyError(f"{self.name}: no agent for flow {flow_id}") from None

    def receive(self, packet: Packet) -> None:
        self.packets_received += 1
        if packet.dst != self.name:
            # Hosts do not forward; a misrouted packet is a topology bug.
            raise TopologyError(
                f"host {self.name} received packet destined for {packet.dst}"
            )
        agent = self._agents.get(packet.flow_id)  # agent_for inlined: hot
        if agent is None:
            raise TopologyError(f"{self.name}: no agent for flow {packet.flow_id}")
        agent.receive(packet)


class Router(Node):
    """A store-and-forward router (gateway)."""

    def receive(self, packet: Packet) -> None:
        self.packets_received += 1
        link = self.routes.get(packet.dst)  # _forward inlined: hot
        if link is None:
            link = self.routes.get("*")  # compact-table default route
            if link is None:
                raise TopologyError(f"{self.name}: no route to {packet.dst}")
        link.send(packet)
