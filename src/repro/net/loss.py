"""Loss-injection modules.

The paper engineers specific loss patterns three different ways:

* Figure 5: exactly 3 or 6 data packets dropped within one window
  ("the buffer size is set to achieve the desired packet loss pattern
  ... the TCP behaviors in each simulation experiment are deterministic")
  → :class:`DeterministicLoss` drops listed ``(flow_id, seqno)`` pairs on
  their first transmission.
* Figure 7: "Artificial losses are introduced at the gateway R1.  The
  uniform random packet-loss rate is varied in each experiment"
  → :class:`UniformLoss`.
* Section 2.3 studies ACK losses → :class:`AckLoss` drops ACKs on the
  reverse path (deterministically by index or at a random rate).

A loss module sits in front of a link: the link consults it before
handing the packet to its queue.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.sim.rng import RngStream


class LossModule:
    """Base class: decides whether an arriving packet is destroyed
    before it reaches the queue."""

    def __init__(self) -> None:
        self.injected_drops = 0

    def should_drop(self, packet: Packet) -> bool:
        """Return True to destroy ``packet``.  Subclasses override."""
        raise NotImplementedError

    def _record(self) -> bool:
        self.injected_drops += 1
        return True


class NoLoss(LossModule):
    """Pass-through (the default)."""

    def should_drop(self, packet: Packet) -> bool:
        return False


class UniformLoss(LossModule):
    """Drop DATA packets i.i.d. with probability ``rate``.

    Parameters
    ----------
    rate:
        Per-packet drop probability in [0, 1].
    rng:
        Random stream.
    flow_id:
        If given, only packets of that flow are subject to loss.
    drop_retransmits:
        When False (default True), retransmitted packets are exempt —
        useful for studying recovery without retransmission losses.
    """

    def __init__(
        self,
        rate: float,
        rng: RngStream,
        flow_id: Optional[int] = None,
        drop_retransmits: bool = True,
    ):
        super().__init__()
        if not 0 <= rate <= 1:
            raise ConfigurationError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._rng = rng
        self.flow_id = flow_id
        self.drop_retransmits = drop_retransmits

    def should_drop(self, packet: Packet) -> bool:
        if not packet.is_data:
            return False
        if self.flow_id is not None and packet.flow_id != self.flow_id:
            return False
        if packet.is_retransmit and not self.drop_retransmits:
            return False
        if self._rng.bernoulli(self.rate):
            return self._record()
        return False


class DeterministicLoss(LossModule):
    """Drop listed ``(flow_id, seqno)`` DATA packets on their first pass.

    Retransmissions of the same sequence number sail through, so a single
    entry models exactly one wire loss — the mechanism behind the
    paper's 3-drop and 6-drop windows.
    """

    def __init__(self, drops: Iterable[Tuple[int, int]]):
        super().__init__()
        self._pending: Set[Tuple[int, int]] = set(drops)
        self._executed: Set[Tuple[int, int]] = set()

    @property
    def pending(self) -> Set[Tuple[int, int]]:
        """Drops not yet executed."""
        return set(self._pending)

    @property
    def executed(self) -> Set[Tuple[int, int]]:
        """Drops already executed."""
        return set(self._executed)

    def should_drop(self, packet: Packet) -> bool:
        if not packet.is_data:
            return False
        key = (packet.flow_id, packet.seqno)
        if key in self._pending:
            self._pending.discard(key)
            self._executed.add(key)
            return self._record()
        return False

    def reprogram(self, drops: Iterable[Tuple[int, int]]) -> None:
        """Replace the not-yet-executed drop set.

        The warm-start fork path uses this: capture one warmed-up world
        with an empty drop list, then reprogram each fork with the
        cell's own drops.  Already-executed drops are untouched (they
        happened on the wire of the captured prefix).
        """
        self._pending = set(drops)


class AckLoss(LossModule):
    """Drop ACK packets, either at a random rate or by arrival index.

    Parameters
    ----------
    rate:
        i.i.d. drop probability applied to ACKs (ignored when
        ``drop_indices`` is given).
    rng:
        Random stream (required when ``rate`` > 0).
    drop_indices:
        Explicit set of ACK arrival indices (0-based, counted per flow)
        to drop — for deterministic ACK-loss experiments.
    flow_id:
        Restrict to one flow when set.
    """

    def __init__(
        self,
        rate: float = 0.0,
        rng: Optional[RngStream] = None,
        drop_indices: Optional[Iterable[int]] = None,
        flow_id: Optional[int] = None,
    ):
        super().__init__()
        if not 0 <= rate <= 1:
            raise ConfigurationError(f"ACK loss rate must be in [0, 1], got {rate}")
        if rate > 0 and rng is None and drop_indices is None:
            raise ConfigurationError("AckLoss with rate > 0 requires an rng")
        self.rate = rate
        self._rng = rng
        self._drop_indices = set(drop_indices) if drop_indices is not None else None
        self.flow_id = flow_id
        self._seen: Dict[int, int] = {}

    def should_drop(self, packet: Packet) -> bool:
        if not packet.is_ack:
            return False
        if self.flow_id is not None and packet.flow_id != self.flow_id:
            return False
        index = self._seen.get(packet.flow_id, 0)
        self._seen[packet.flow_id] = index + 1
        if self._drop_indices is not None:
            if index in self._drop_indices:
                return self._record()
            return False
        if self._rng is not None and self._rng.bernoulli(self.rate):
            return self._record()
        return False


class PeriodicLoss(LossModule):
    """Drop every ``period``-th first-transmission DATA packet.

    This is the *literal* loss process assumed by the Mathis
    square-root model derivation ("a single packet loss within a window
    of data occurs periodically", as the paper's Section 2 puts it):
    one loss per ``period`` packets, perfectly regular.  Used by the
    model-validation tests to check simulator and model against each
    other under the model's own assumptions.
    """

    def __init__(self, period: int, offset: int = 0, flow_id: Optional[int] = None):
        super().__init__()
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        if offset < 0:
            raise ConfigurationError("offset must be >= 0")
        self.period = period
        self.offset = offset
        self.flow_id = flow_id
        self._count = 0

    @property
    def loss_rate(self) -> float:
        return 1.0 / self.period

    def should_drop(self, packet: Packet) -> bool:
        if not packet.is_data or packet.is_retransmit:
            return False
        if self.flow_id is not None and packet.flow_id != self.flow_id:
            return False
        self._count += 1
        if (self._count - 1 - self.offset) % self.period == 0 and self._count > self.offset:
            return self._record()
        return False


class GilbertElliott(LossModule):
    """Two-state Markov (Gilbert-Elliott) burst-loss channel.

    The channel alternates between a GOOD state (loss probability
    ``p_good``, typically ~0) and a BAD state (loss probability
    ``p_bad``, high); per-packet transition probabilities
    ``p_good_to_bad`` / ``p_bad_to_good`` set the burst geometry — the
    mean bad-state burst length is ``1 / p_bad_to_good`` packets.

    The paper's whole premise is that "bursty packet losses are
    reported to be common" [18]; this is the standard synthetic model
    of exactly that behaviour, complementing the deterministic and
    i.i.d. modules.
    """

    def __init__(
        self,
        rng: RngStream,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.3,
        p_good: float = 0.0,
        p_bad: float = 0.5,
        flow_id: Optional[int] = None,
    ):
        super().__init__()
        for name, p in [
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("p_good", p_good),
            ("p_bad", p_bad),
        ]:
            if not 0 <= p <= 1:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        self._rng = rng
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.p_good = p_good
        self.p_bad = p_bad
        self.flow_id = flow_id
        self.in_bad_state = False
        self.bad_entries = 0

    def should_drop(self, packet: Packet) -> bool:
        if not packet.is_data:
            return False
        if self.flow_id is not None and packet.flow_id != self.flow_id:
            return False
        # State transition first (per-packet clock), then the loss draw.
        if self.in_bad_state:
            if self._rng.bernoulli(self.p_bad_to_good):
                self.in_bad_state = False
        elif self._rng.bernoulli(self.p_good_to_bad):
            self.in_bad_state = True
            self.bad_entries += 1
        rate = self.p_bad if self.in_bad_state else self.p_good
        if self._rng.bernoulli(rate):
            return self._record()
        return False

    def expected_loss_rate(self) -> float:
        """Stationary loss probability of the chain (for calibration)."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0:
            return self.p_bad if self.in_bad_state else self.p_good
        pi_bad = self.p_good_to_bad / denom
        return pi_bad * self.p_bad + (1 - pi_bad) * self.p_good


class WindowedLoss(LossModule):
    """Activate an inner loss module only inside a time window.

    Fault plans use this to turn the stationary loss processes
    (uniform, Gilbert-Elliott, periodic, ACK loss) into bounded
    *episodes*: the wrapped module sees no packets outside
    ``[start, end)``, so its internal state (and RNG stream) is only
    consumed while the episode is live.
    """

    def __init__(
        self,
        sim: "Simulator",
        inner: LossModule,
        start: float = 0.0,
        end: Optional[float] = None,
    ):
        super().__init__()
        if start < 0:
            raise ConfigurationError("window start must be >= 0")
        if end is not None and end <= start:
            raise ConfigurationError(f"empty loss window [{start}, {end})")
        self._sim = sim
        self.inner = inner
        self.start = start
        self.end = end

    @property
    def active(self) -> bool:
        now = self._sim.now
        return now >= self.start and (self.end is None or now < self.end)

    def should_drop(self, packet: Packet) -> bool:
        if not self.active:
            return False
        if self.inner.should_drop(packet):
            self.injected_drops += 1
            return True
        return False


class Composite(LossModule):
    """Apply several loss modules in order (first match drops)."""

    def __init__(self, *modules: LossModule):
        super().__init__()
        self.modules = list(modules)

    def should_drop(self, packet: Packet) -> bool:
        for module in self.modules:
            if module.should_drop(packet):
                self.injected_drops += 1
                return True
        return False
