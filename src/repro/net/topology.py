"""The paper's dumbbell topology (Figure 4).

``n`` sending hosts S1..Sn attach to gateway R1; ``n`` receiving hosts
K1..Kn attach to gateway R2; every connection S_i -> K_i shares the
common bottleneck R1 -> R2.  Defaults come from Table 3:

* bottleneck bandwidth 0.8 Mb/s,
* side links 10 Mb/s,
* buffer 8 packets (drop-tail experiments),
* data packets 1000 B, ACKs 40 B (enforced by the agents).

The bottleneck's one-way delay is configurable (the scanned table row
is illegible; see DESIGN.md) and the queue discipline for the bottleneck
is pluggable so the same builder serves the drop-tail (Section 3.2),
RED (Section 3.3), model-fitness (Section 4) and fairness (Section 5)
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.net.loss import LossModule
from repro.net.network import Network
from repro.net.node import Host, Router
from repro.net.queues import DropTailQueue, PacketQueue
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus

MBPS = 1_000_000.0


@dataclass
class DumbbellParams:
    """Knobs for :class:`Dumbbell` (defaults = paper Table 3)."""

    n_pairs: int = 3
    bottleneck_bandwidth_bps: float = 0.8 * MBPS
    bottleneck_delay: float = 0.050  # one-way, seconds (see DESIGN.md)
    side_bandwidth_bps: float = 10.0 * MBPS
    side_delay: float = 0.001
    buffer_packets: int = 8
    # Side-link buffers are generous so only the bottleneck drops.
    side_buffer_packets: int = 1000
    # Optional per-pair sender-side delays (seconds), for heterogeneous
    # RTT experiments; entry i applies to the S_{i+1} <-> R1 links.
    # Missing entries fall back to side_delay.
    sender_side_delays: Optional[Sequence[float]] = None
    # Give the reverse direction (R2 -> R1) the same finite queue as the
    # forward bottleneck, for two-way-traffic studies (Zhang et al.,
    # the paper's reference [22]: ACK compression and its effects).
    # When False (default) the reverse path has a generous buffer and
    # ACKs effectively never queue.
    symmetric_bottleneck: bool = False

    def validate(self) -> None:
        if self.n_pairs < 1:
            raise ConfigurationError("dumbbell needs at least one host pair")
        if self.buffer_packets < 1:
            raise ConfigurationError("bottleneck buffer must be >= 1 packet")
        if self.sender_side_delays is not None:
            if any(d < 0 for d in self.sender_side_delays):
                raise ConfigurationError("side delays must be >= 0")

    def sender_delay(self, pair_index: int) -> float:
        """Side delay of the i-th (0-based) sender pair."""
        if (
            self.sender_side_delays is not None
            and pair_index < len(self.sender_side_delays)
        ):
            return self.sender_side_delays[pair_index]
        return self.side_delay


class Dumbbell:
    """Builds and owns the Figure-4 network.

    Parameters
    ----------
    sim:
        Event engine.
    params:
        Topology knobs.
    bottleneck_queue_factory:
        Called with a name to build the R1->R2 queue; defaults to a
        drop-tail queue of ``params.buffer_packets``.  Pass a RED
        factory for Section 3.3 experiments.
    forward_loss / reverse_loss:
        Optional loss modules on the bottleneck's forward (data) and
        reverse (ACK) directions.
    """

    def __init__(
        self,
        sim: Simulator,
        params: Optional[DumbbellParams] = None,
        bottleneck_queue_factory: Optional[Callable[[str], PacketQueue]] = None,
        forward_loss: Optional[LossModule] = None,
        reverse_loss: Optional[LossModule] = None,
        trace: Optional[TraceBus] = None,
        compact_routes: bool = False,
    ):
        self.params = params or DumbbellParams()
        self.params.validate()
        self.net = Network(sim, trace=trace)
        p = self.params

        make_queue = bottleneck_queue_factory or (
            lambda name: DropTailQueue(limit=p.buffer_packets, name=name)
        )

        self.r1: Router = self.net.add_router("R1")
        self.r2: Router = self.net.add_router("R2")
        self.senders: List[Host] = []
        self.receivers: List[Host] = []

        for i in range(1, p.n_pairs + 1):
            s = self.net.add_host(f"S{i}")
            k = self.net.add_host(f"K{i}")
            self.senders.append(s)
            self.receivers.append(k)
            self.net.add_duplex_link(
                s.name,
                "R1",
                p.side_bandwidth_bps,
                p.sender_delay(i - 1),
                queue_ab=DropTailQueue(p.side_buffer_packets, f"{s.name}->R1"),
                queue_ba=DropTailQueue(p.side_buffer_packets, f"R1->{s.name}"),
            )
            self.net.add_duplex_link(
                "R2",
                k.name,
                p.side_bandwidth_bps,
                p.side_delay,
                queue_ab=DropTailQueue(p.side_buffer_packets, f"R2->{k.name}"),
                queue_ba=DropTailQueue(p.side_buffer_packets, f"{k.name}->R2"),
            )

        reverse_queue = (
            make_queue("R2->R1")
            if p.symmetric_bottleneck
            else DropTailQueue(p.side_buffer_packets, "R2->R1")
        )
        self.forward_link, self.reverse_link = self.net.add_duplex_link(
            "R1",
            "R2",
            p.bottleneck_bandwidth_bps,
            p.bottleneck_delay,
            queue_ab=make_queue("R1->R2"),
            queue_ba=reverse_queue,
            loss_ab=forward_loss,
            loss_ba=reverse_loss,
        )
        # Compact tables make thousand-pair dumbbells tractable (scene
        # builders pass True; the paper harnesses keep full tables so
        # their golden digests are untouched).
        self.net.compute_routes(compact=compact_routes)
        self.net.validate()

    @property
    def bottleneck_queue(self) -> PacketQueue:
        """The R1->R2 queue discipline (where the paper's drops happen)."""
        return self.forward_link.queue

    def sender(self, i: int) -> Host:
        """1-based access mirroring the paper's S_i naming."""
        return self.senders[i - 1]

    def receiver(self, i: int) -> Host:
        """1-based access mirroring the paper's K_i naming."""
        return self.receivers[i - 1]

    def base_rtt(self) -> float:
        """Two-way propagation delay, excluding transmission/queueing."""
        p = self.params
        return 2 * (p.side_delay + p.bottleneck_delay + p.side_delay)
