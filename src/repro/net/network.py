"""Network container: nodes + links + static shortest-path routing.

:class:`Network` is the assembly surface for arbitrary topologies.  Call
:meth:`add_host` / :meth:`add_router`, wire them with :meth:`add_link`
(or :meth:`add_duplex_link` for a symmetric pair), then
:meth:`compute_routes` to fill every node's forwarding table with
delay-weighted shortest paths.

Routing uses a self-contained Dijkstra so the core library has no hard
dependency on networkx (which remains available for analysis code).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, TopologyError
from repro.net.link import Link
from repro.net.loss import LossModule
from repro.net.node import Host, Node, Router
from repro.net.queues import DropTailQueue, PacketQueue
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus

QueueFactory = Callable[[str], PacketQueue]


def _default_queue_factory(name: str) -> PacketQueue:
    return DropTailQueue(limit=1000, name=name)


class Network:
    """A collection of nodes and links sharing one simulator and trace bus."""

    def __init__(self, sim: Simulator, trace: Optional[TraceBus] = None):
        self.sim = sim
        self.trace = trace if trace is not None else TraceBus()
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[str, Link] = {}
        # adjacency: node name -> list of (neighbour name, link)
        self._adj: Dict[str, List[Tuple[str, Link]]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_host(self, name: str) -> Host:
        return self._add_node(Host(self.sim, name))

    def add_router(self, name: str) -> Router:
        return self._add_node(Router(self.sim, name))

    def _add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self._adj[node.name] = []
        return node

    def add_link(
        self,
        src: str,
        dst: str,
        bandwidth_bps: float,
        delay: float,
        queue: Optional[PacketQueue] = None,
        loss: Optional[LossModule] = None,
    ) -> Link:
        """Add a unidirectional link ``src -> dst``."""
        if src not in self.nodes or dst not in self.nodes:
            raise TopologyError(f"link endpoints must exist: {src!r}, {dst!r}")
        name = f"{src}->{dst}"
        if name in self.links:
            raise TopologyError(f"duplicate link {name}")
        link = Link(
            self.sim,
            name,
            bandwidth_bps,
            delay,
            queue if queue is not None else _default_queue_factory(name),
            trace=self.trace,
            loss=loss,
        )
        link.connect(self.nodes[dst])
        self.links[name] = link
        self._adj[src].append((dst, link))
        return link

    def add_duplex_link(
        self,
        a: str,
        b: str,
        bandwidth_bps: float,
        delay: float,
        queue_ab: Optional[PacketQueue] = None,
        queue_ba: Optional[PacketQueue] = None,
        loss_ab: Optional[LossModule] = None,
        loss_ba: Optional[LossModule] = None,
    ) -> Tuple[Link, Link]:
        """Add a symmetric pair of links between ``a`` and ``b``."""
        forward = self.add_link(a, b, bandwidth_bps, delay, queue_ab, loss_ab)
        backward = self.add_link(b, a, bandwidth_bps, delay, queue_ba, loss_ba)
        return forward, backward

    def link(self, src: str, dst: str) -> Link:
        try:
            return self.links[f"{src}->{dst}"]
        except KeyError:
            raise TopologyError(f"no link {src}->{dst}") from None

    def host(self, name: str) -> Host:
        node = self.nodes.get(name)
        if not isinstance(node, Host):
            raise TopologyError(f"{name!r} is not a host")
        return node

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def compute_routes(self, compact: bool = False) -> None:
        """Fill every node's forwarding table with next hops along
        delay-weighted shortest paths (Dijkstra from every source).

        With ``compact=True`` (the big-scene path used by
        :mod:`repro.scenes`), a node with exactly one outgoing link gets
        a single ``"*"`` default route instead of an explicit entry per
        destination — on a thousand-pair dumbbell that turns ~2000
        Dijkstra passes and ~4M route entries into 2 passes and 2 full
        tables.  Forwarding falls back to ``"*"`` on a table miss (see
        :meth:`~repro.net.node.Node._forward`).  The shortcut is only
        exact when every destination is reachable, so it applies only
        when the graph is strongly connected; otherwise this silently
        falls back to full tables (where unreachable pairs get no route
        and raise on use, as before).
        """
        compact = compact and self._strongly_connected()
        for origin in self.nodes:
            node = self.nodes[origin]
            if compact:
                out = self._adj[origin]
                if len(out) == 1:
                    node.routes.clear()
                    node.routes["*"] = out[0][1]
                    continue
            dist, first_link = self._dijkstra(origin)
            node.routes.clear()
            for dst, link in first_link.items():
                if dst != origin:
                    node.add_route(dst, link)
            # Sanity: hosts should be able to reach every other node that
            # is reachable in the graph; unreachable pairs simply get no
            # route and raise on use.
            del dist

    def _strongly_connected(self) -> bool:
        """True when every node reaches every other node (one forward
        and one reverse sweep from an arbitrary origin)."""
        if not self.nodes:
            return False
        reverse: Dict[str, List[str]] = {name: [] for name in self.nodes}
        for src, out in self._adj.items():
            for dst, _link in out:
                reverse[dst].append(src)
        origin = next(iter(self.nodes))
        forward_adj = {src: [dst for dst, _ in out] for src, out in self._adj.items()}
        for adjacency in (forward_adj, reverse):
            seen = {origin}
            frontier = [origin]
            while frontier:
                u = frontier.pop()
                for v in adjacency[u]:
                    if v not in seen:
                        seen.add(v)
                        frontier.append(v)
            if len(seen) != len(self.nodes):
                return False
        return True

    def _dijkstra(self, origin: str) -> Tuple[Dict[str, float], Dict[str, Link]]:
        dist: Dict[str, float] = {origin: 0.0}
        first_link: Dict[str, Link] = {}
        serial = 0  # heap tiebreaker; Link objects are not orderable
        heap: List[Tuple[float, str, int, Optional[Link]]] = [(0.0, origin, serial, None)]
        visited: set = set()
        visited_add = visited.add
        dist_get = dist.get
        adj = self._adj
        heappop = heapq.heappop
        heappush = heapq.heappush
        while heap:
            d, u, _, via = heappop(heap)
            if u in visited:
                continue
            visited_add(u)
            if via is not None:
                first_link[u] = via
            for v, link in adj[u]:
                # Weight = propagation delay + a small constant so hop
                # count breaks ties deterministically.  (Keep the
                # two-step sum: its rounding decides near-ties.)
                w = link.delay + 1e-9
                nd = d + w
                known = dist_get(v)
                if known is None or nd < known - 1e-15:
                    dist[v] = nd
                    serial += 1
                    heappush(heap, (nd, v, serial, via if via is not None else link))
        return dist, first_link

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if any link is dangling."""
        for link in self.links.values():
            if link.dst is None:
                raise ConfigurationError(f"link {link.name} is not connected")
