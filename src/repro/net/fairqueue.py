"""Per-flow fair queueing (round-robin) gateway.

Section 2.3 of the paper conjectures: "if a fair share is given to each
flow at the routers, the loss probability of an ACK packet should be
much smaller than that of a data packet.  Because the size of ACK
packets is usually much smaller than that of data packets ... an
ACK-packet flow consumes much less network resources than a data-packet
flow."  This discipline exists to test that conjecture (see
``tests/net/test_fairqueue.py``): per-flow FIFO queues served
round-robin with a byte deficit (DRR, Shreedhar & Varghese '95), and
buffer overflow resolved by dropping from the *longest* queue — so a
40-byte ACK stream sharing a gateway with 1000-byte data streams is
essentially never the drop victim.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Optional

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.net.queues import PacketQueue


class FairQueue(PacketQueue):
    """Deficit-round-robin fair queueing over per-flow FIFOs.

    Parameters
    ----------
    limit:
        Shared buffer capacity, packets.
    quantum_bytes:
        DRR quantum added to a flow's deficit each round; the default
        of one data packet (1000 B) gives byte-fair sharing while still
        letting several small ACKs through per round.
    """

    def __init__(self, limit: int, quantum_bytes: int = 1000, name: str = "fq"):
        super().__init__(limit=limit, name=name)
        if quantum_bytes < 1:
            raise ConfigurationError("quantum must be >= 1 byte")
        self.quantum_bytes = quantum_bytes
        # OrderedDict preserves round-robin order of active flows.
        self._flows: "OrderedDict[int, Deque[Packet]]" = OrderedDict()
        self._deficits: Dict[int, int] = {}
        self._total = 0
        self.drops_by_flow: Dict[int, int] = {}

    def __len__(self) -> int:
        return self._total

    @property
    def is_empty(self) -> bool:
        return self._total == 0

    def flow_backlog(self, flow_id: int) -> int:
        """Queued packets of one flow."""
        queue = self._flows.get(flow_id)
        return len(queue) if queue else 0

    # ------------------------------------------------------------------
    # enqueue with longest-queue drop
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        queue = self._flows.get(packet.flow_id)
        if queue is None:
            queue = deque()
            self._flows[packet.flow_id] = queue
            self._deficits.setdefault(packet.flow_id, 0)
        queue.append(packet)
        self._total += 1
        self.enqueues += 1
        if self._total > self.limit:
            victim = self._drop_from_longest()
            # The arriving packet was accepted unless its own flow held
            # the longest queue and it was the tail that got cut.
            return victim is not packet
        return True

    def _drop_from_longest(self) -> Packet:
        victim_flow = max(self._flows, key=lambda fid: len(self._flows[fid]))
        victim_queue = self._flows[victim_flow]
        victim = victim_queue.pop()  # drop from the tail
        self._total -= 1
        if not victim_queue:
            del self._flows[victim_flow]
            self._deficits[victim_flow] = 0
        self.drops_by_flow[victim_flow] = self.drops_by_flow.get(victim_flow, 0) + 1
        self._drop(victim, "fq-overflow")
        return victim

    # ------------------------------------------------------------------
    # DRR dequeue
    # ------------------------------------------------------------------
    def dequeue(self) -> Optional[Packet]:
        if self._total == 0:
            return None
        # Walk the active-flow ring until some flow's deficit covers
        # its head-of-line packet (guaranteed to terminate: each pass
        # adds a quantum to the head flow).
        while True:
            flow_id, queue = next(iter(self._flows.items()))
            head = queue[0]
            if self._deficits[flow_id] >= head.size:
                self._deficits[flow_id] -= head.size
                queue.popleft()
                self._total -= 1
                self.dequeues += 1
                if queue:
                    # Stay eligible; move to the back of the ring.
                    self._flows.move_to_end(flow_id)
                else:
                    # Idle flows forfeit their deficit (standard DRR).
                    del self._flows[flow_id]
                    self._deficits[flow_id] = 0
                return head
            self._deficits[flow_id] += self.quantum_bytes
            self._flows.move_to_end(flow_id)
