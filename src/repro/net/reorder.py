"""Packet reordering injection.

Section 2.2.2 of the paper argues RR's accounting survives reordering:
"out-of-order delivery does not skew the measurement of the number of
new data packets sent during the last RTT that have been received".
These modules create the out-of-order deliveries needed to test that
claim: a reorderer attached to a link adds extra propagation delay to
selected packets, letting the packets behind them overtake.

Usage::

    bell.forward_link.reorder = RandomReorderer(rng, probability=0.05)
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.sim.rng import RngStream


class Reorderer:
    """Base: decides per packet how much extra latency to add."""

    def __init__(self) -> None:
        self.reordered = 0

    def extra_delay(self, packet: Packet) -> float:
        raise NotImplementedError

    def _record(self, delay: float) -> float:
        self.reordered += 1
        return delay


class RandomReorderer(Reorderer):
    """Delay DATA packets i.i.d. with probability ``probability`` by
    ``delay`` seconds (set ``delay`` larger than the packet service
    time so the following packet genuinely overtakes)."""

    def __init__(
        self,
        rng: RngStream,
        probability: float,
        delay: float = 0.02,
        flow_id: Optional[int] = None,
    ):
        super().__init__()
        if not 0 <= probability <= 1:
            raise ConfigurationError(f"probability must be in [0, 1], got {probability}")
        if delay < 0:
            raise ConfigurationError("reorder delay must be >= 0")
        self._rng = rng
        self.probability = probability
        self.delay = delay
        self.flow_id = flow_id

    def extra_delay(self, packet: Packet) -> float:
        if not packet.is_data:
            return 0.0
        if self.flow_id is not None and packet.flow_id != self.flow_id:
            return 0.0
        if self._rng.bernoulli(self.probability):
            return self._record(self.delay)
        return 0.0


class JitterReorderer(Reorderer):
    """Uniform random per-packet extra latency in [0, max_jitter].

    Small jitter models path-delay variance (it inflates the sender's
    RTTVAR and hence its RTO); jitter larger than the packet service
    time additionally reorders.  Applies to DATA packets by default;
    set ``include_acks`` to jitter the ACK path too.
    """

    def __init__(
        self,
        rng: RngStream,
        max_jitter: float,
        flow_id: Optional[int] = None,
        include_acks: bool = False,
    ):
        super().__init__()
        if max_jitter < 0:
            raise ConfigurationError("max_jitter must be >= 0")
        self._rng = rng
        self.max_jitter = max_jitter
        self.flow_id = flow_id
        self.include_acks = include_acks

    def extra_delay(self, packet: Packet) -> float:
        if packet.is_ack and not self.include_acks:
            return 0.0
        if self.flow_id is not None and packet.flow_id != self.flow_id:
            return 0.0
        if self.max_jitter == 0:
            return 0.0
        return self._record(self._rng.uniform(0.0, self.max_jitter))


class DeterministicReorderer(Reorderer):
    """Delay the listed ``(flow_id, seqno)`` DATA packets on their
    first pass (retransmissions travel normally)."""

    def __init__(self, targets: Iterable[Tuple[int, int]], delay: float = 0.02):
        super().__init__()
        if delay < 0:
            raise ConfigurationError("reorder delay must be >= 0")
        self._pending: Set[Tuple[int, int]] = set(targets)
        self.delay = delay

    def extra_delay(self, packet: Packet) -> float:
        if not packet.is_data or packet.is_retransmit:
            return 0.0
        key = (packet.flow_id, packet.seqno)
        if key in self._pending:
            self._pending.discard(key)
            return self._record(self.delay)
        return 0.0
