"""The "parking lot" topology: a chain of bottlenecks.

The other classic TCP-evaluation topology besides the dumbbell: ``n``
routers R1..Rn in a chain, one *long* path crossing every bottleneck
hop, plus one *cross* flow per hop entering at R_i and leaving at
R_{i+1}.  It exposes the multi-bottleneck bias of AIMD (the long flow
competes at every hop and gets less than a per-hop fair share) and
gives the recovery schemes correlated, multi-hop loss patterns that the
single-bottleneck dumbbell cannot produce.

Host naming: the long path runs ``L_src -> L_dst``; hop ``i``'s cross
traffic runs ``X{i}_src -> X{i}_dst``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.net.node import Host, Router
from repro.net.queues import DropTailQueue, PacketQueue
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus

MBPS = 1_000_000.0


@dataclass
class ParkingLotParams:
    """Knobs for :class:`ParkingLot`."""

    n_hops: int = 3
    bottleneck_bandwidth_bps: float = 0.8 * MBPS
    bottleneck_delay: float = 0.010
    side_bandwidth_bps: float = 10.0 * MBPS
    side_delay: float = 0.001
    buffer_packets: int = 25
    side_buffer_packets: int = 1000

    def validate(self) -> None:
        if self.n_hops < 1:
            raise ConfigurationError("parking lot needs at least one hop")
        if self.buffer_packets < 1:
            raise ConfigurationError("bottleneck buffer must be >= 1 packet")


class ParkingLot:
    """Builds the chain-of-bottlenecks network.

    Parameters mirror :class:`~repro.net.topology.Dumbbell`; a custom
    ``bottleneck_queue_factory`` applies to every R_i -> R_{i+1} hop.
    """

    def __init__(
        self,
        sim: Simulator,
        params: Optional[ParkingLotParams] = None,
        bottleneck_queue_factory: Optional[Callable[[str], PacketQueue]] = None,
        trace: Optional[TraceBus] = None,
        compact_routes: bool = False,
    ):
        self.params = params or ParkingLotParams()
        self.params.validate()
        self.net = Network(sim, trace=trace)
        p = self.params
        make_queue = bottleneck_queue_factory or (
            lambda name: DropTailQueue(limit=p.buffer_packets, name=name)
        )

        self.routers: List[Router] = [
            self.net.add_router(f"R{i}") for i in range(1, p.n_hops + 2)
        ]
        self.bottlenecks = []
        for a, b in zip(self.routers, self.routers[1:]):
            forward, _ = self.net.add_duplex_link(
                a.name,
                b.name,
                p.bottleneck_bandwidth_bps,
                p.bottleneck_delay,
                queue_ab=make_queue(f"{a.name}->{b.name}"),
                queue_ba=DropTailQueue(p.side_buffer_packets, f"{b.name}->{a.name}"),
            )
            self.bottlenecks.append(forward)

        def attach_host(name: str, router: Router) -> Host:
            host = self.net.add_host(name)
            self.net.add_duplex_link(
                name,
                router.name,
                p.side_bandwidth_bps,
                p.side_delay,
                queue_ab=DropTailQueue(p.side_buffer_packets, f"{name}->{router.name}"),
                queue_ba=DropTailQueue(p.side_buffer_packets, f"{router.name}->{name}"),
            )
            return host

        self.long_src = attach_host("L_src", self.routers[0])
        self.long_dst = attach_host("L_dst", self.routers[-1])
        self.cross_pairs: List[Tuple[Host, Host]] = []
        for hop in range(1, p.n_hops + 1):
            src = attach_host(f"X{hop}_src", self.routers[hop - 1])
            dst = attach_host(f"X{hop}_dst", self.routers[hop])
            self.cross_pairs.append((src, dst))

        self.net.compute_routes(compact=compact_routes)
        self.net.validate()

    def cross_pair(self, hop: int) -> Tuple[Host, Host]:
        """1-based access to hop ``hop``'s cross-traffic host pair."""
        return self.cross_pairs[hop - 1]

    def long_path_rtt(self) -> float:
        """Base two-way propagation delay of the long path."""
        p = self.params
        one_way = 2 * p.side_delay + p.n_hops * p.bottleneck_delay
        return 2 * one_way
