"""Unidirectional links with transmission + propagation delay.

A link models one output interface: an ingress queue discipline plus a
transmitter that serves one packet at a time.  A packet of ``size``
bytes occupies the transmitter for ``size * 8 / bandwidth`` seconds and
arrives at the far end ``delay`` seconds after transmission completes —
classic store-and-forward.

An optional :class:`~repro.net.loss.LossModule` sits in front of the
queue for artificial loss injection ("artificial losses are introduced
at the gateway R1", paper Section 4).
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.net.loss import LossModule, NoLoss
from repro.net.packet import Packet
from repro.net.queues import PacketQueue
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


class Link:
    """One-way link ``src -> dst``.

    Parameters
    ----------
    sim:
        Event engine.
    name:
        Human-readable identifier, e.g. ``"R1->R2"``.
    bandwidth_bps:
        Link rate in bits per second.
    delay:
        One-way propagation delay in seconds.
    queue:
        Ingress queue discipline (owned by this link).
    trace:
        Optional trace bus; publishes ``link.drop`` / ``link.tx`` records.
    loss:
        Optional artificial loss module applied before the queue.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: float,
        delay: float,
        queue: PacketQueue,
        trace: Optional[TraceBus] = None,
        loss: Optional[LossModule] = None,
    ):
        if bandwidth_bps <= 0:
            raise ConfigurationError(f"bandwidth must be > 0, got {bandwidth_bps}")
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        self._sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        self.queue = queue
        self.trace = trace
        self.loss = loss or NoLoss()
        self._dst: Optional["Node"] = None
        # Optional reordering injector (see repro.net.reorder): adds
        # per-packet extra propagation delay so later packets overtake.
        self.reorder = None
        # Optional packet tamperer (see repro.faults.tamper): may
        # duplicate or corrupt-drop packets before they reach the queue.
        self.tamper = None
        self._busy = False
        self._down = False
        self.packets_delivered = 0
        self.bytes_delivered = 0
        self.outage_drops = 0
        # Let RED age its average using this link's packet service time.
        setter = getattr(queue, "set_mean_packet_time", None)
        if setter is not None:
            setter(8.0 * 1000 / bandwidth_bps)
        queue.on_drop = self._queue_dropped

    def connect(self, dst: "Node") -> None:
        """Attach the receiving node."""
        self._dst = dst

    @property
    def dst(self) -> Optional["Node"]:
        return self._dst

    @property
    def busy(self) -> bool:
        """True while a packet occupies the transmitter."""
        return self._busy

    def transmission_time(self, packet: Packet) -> float:
        """Seconds the transmitter is occupied by ``packet``."""
        return packet.size * 8.0 / self.bandwidth_bps

    # ------------------------------------------------------------------
    # outages
    # ------------------------------------------------------------------
    @property
    def is_down(self) -> bool:
        return self._down

    def set_down(self) -> None:
        """Take the link down: every packet arriving while down is
        destroyed (a natural generator of loss bursts).  Packets
        already in the queue or in flight are unaffected."""
        if not self._down:
            self._down = True
            self._emit("link.down")

    def set_up(self) -> None:
        """Restore the link."""
        if self._down:
            self._down = False
            self._emit("link.up")

    def schedule_outage(self, start: float, duration: float) -> None:
        """Convenience: go down at absolute time ``start`` for
        ``duration`` seconds."""
        if duration < 0:
            raise ConfigurationError("outage duration must be >= 0")
        self._sim.schedule_at(start, self.set_down)
        self._sim.schedule_at(start + duration, self.set_up)

    def send(self, packet: Packet) -> None:
        """Entry point: apply outages, tampering and loss injection,
        queue, and start the transmitter if idle."""
        if self._down:
            self.outage_drops += 1
            self._emit("link.injected_drop", packet=packet, reason="outage")
            return
        if self.tamper is not None:
            verdict = self.tamper.verdict(packet)
            if verdict == "corrupt":
                # Corruption is modelled as a drop: the checksum fails
                # at the receiver, so the packet might as well vanish.
                self._emit("link.injected_drop", packet=packet, reason="corrupt")
                return
            if verdict == "duplicate":
                self._emit("link.duplicate", packet=packet)
                self._admit(self.tamper.clone(packet))
        self._admit(packet)

    def _admit(self, packet: Packet) -> None:
        """Run loss injection and queueing for one packet copy."""
        if self.loss.should_drop(packet):
            self._emit("link.injected_drop", packet=packet)
            return
        if self.queue.enqueue(packet) and not self._busy:
            self._start_transmission()

    def _queue_dropped(self, packet: Packet, reason: str) -> None:
        self._emit("link.drop", packet=packet, reason=reason, qlen=len(self.queue))

    def _start_transmission(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            return
        self._busy = True
        self._sim.schedule(self.transmission_time(packet), self._transmission_done, packet)

    def _transmission_done(self, packet: Packet) -> None:
        self._busy = False
        self._emit("link.tx", packet=packet)
        delay = self.delay
        if self.reorder is not None:
            delay += self.reorder.extra_delay(packet)
        self._sim.schedule(delay, self._deliver, packet)
        if not self.queue.is_empty:
            self._start_transmission()

    def _deliver(self, packet: Packet) -> None:
        self.packets_delivered += 1
        self.bytes_delivered += packet.size
        if self._dst is None:
            raise ConfigurationError(f"link {self.name} has no destination node")
        self._dst.receive(packet)

    def _emit(self, category: str, **fields) -> None:
        if self.trace is not None:
            self.trace.emit(self._sim.now, category, self.name, **fields)
