"""Unidirectional links with transmission + propagation delay.

A link models one output interface: an ingress queue discipline plus a
transmitter that serves one packet at a time.  A packet of ``size``
bytes occupies the transmitter for ``size * 8 / bandwidth`` seconds and
arrives at the far end ``delay`` seconds after transmission completes —
classic store-and-forward.

An optional :class:`~repro.net.loss.LossModule` sits in front of the
queue for artificial loss injection ("artificial losses are introduced
at the gateway R1", paper Section 4).
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.net.loss import LossModule, NoLoss
from repro.net.packet import Packet, maybe_release
from repro.net.queues import PacketQueue
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_CHANNEL, TraceBus

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


class Link:
    """One-way link ``src -> dst``.

    Parameters
    ----------
    sim:
        Event engine.
    name:
        Human-readable identifier, e.g. ``"R1->R2"``.
    bandwidth_bps:
        Link rate in bits per second.
    delay:
        One-way propagation delay in seconds.
    queue:
        Ingress queue discipline (owned by this link).
    trace:
        Optional trace bus; publishes ``link.drop`` / ``link.tx`` records.
    loss:
        Optional artificial loss module applied before the queue.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: float,
        delay: float,
        queue: PacketQueue,
        trace: Optional[TraceBus] = None,
        loss: Optional[LossModule] = None,
    ):
        if bandwidth_bps <= 0:
            raise ConfigurationError(f"bandwidth must be > 0, got {bandwidth_bps}")
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        self._sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        self.queue = queue
        self.trace = trace
        self.loss = loss or NoLoss()  # property: also derives _loss_active
        self._dst: Optional["Node"] = None
        # Optional reordering injector (see repro.net.reorder): adds
        # per-packet extra propagation delay so later packets overtake.
        self.reorder = None
        # Optional packet tamperer (see repro.faults.tamper): may
        # duplicate or corrupt-drop packets before they reach the queue.
        self.tamper = None
        self._busy = False
        self._down = False
        # Opt-in batched egress (see enable_batched_egress).  False on
        # every default link; the batching attributes are stripped from
        # checkpoints while disabled so default-link digests are
        # byte-identical to a batching-unaware build.
        self._batch = False
        # Optional time-varying rate schedule (repro.net.varlink); set
        # by RateSchedule.apply.  None is stripped from checkpoints for
        # the same digest-compatibility reason as _batch.
        self.rate_schedule = None
        self.packets_delivered = 0
        self.bytes_delivered = 0
        self.outage_drops = 0
        # Let RED age its average using this link's packet service time.
        setter = getattr(queue, "set_mean_packet_time", None)
        if setter is not None:
            setter(8.0 * 1000 / bandwidth_bps)
        queue.on_drop = self._queue_dropped
        # Derived tracing state (never pickled; see __getstate__).
        self._bind_trace_channels()

    # ------------------------------------------------------------------
    # tracing fast path / checkpointing
    # ------------------------------------------------------------------
    def _bind_trace_channels(self):
        """(Re)derive the cached ``link.tx`` channel — the only
        per-packet emit on a link's hot path."""
        trace = self.trace
        self._ch_tx = NULL_CHANNEL if trace is None else trace.channel("link.tx")
        return self._ch_tx

    @property
    def loss(self) -> LossModule:
        return self._loss

    @loss.setter
    def loss(self, module: LossModule) -> None:
        # Cache "is this a real loss module?" so the per-packet path
        # skips the NoLoss.should_drop call entirely.
        self._loss = module
        self._loss_active = type(module) is not NoLoss

    def __getstate__(self):
        """The live ``__dict__`` minus derived caches (trace channel,
        loss-activity flag), with the loss module under its public
        ``loss`` key — keeping checkpoints and golden digests identical
        to a cache-free link."""
        state = self.__dict__.copy()
        state.pop("_ch_tx", None)
        del state["_loss"], state["_loss_active"]
        state["loss"] = self._loss
        if not self._batch:
            # Default links pickle exactly as a batching-unaware link
            # would; batching links keep their mode and service horizon.
            del state["_batch"]
        if state.get("rate_schedule") is None:
            state.pop("rate_schedule", None)
        return state

    def __setstate__(self, state) -> None:
        state = dict(state)
        loss = state.pop("loss")
        state.setdefault("_batch", False)
        state.setdefault("rate_schedule", None)
        self.__dict__.update(state)
        self.loss = loss
        # Rebound lazily on first emit: the trace bus may itself still
        # be mid-unpickle here.
        self._ch_tx = None

    def connect(self, dst: "Node") -> None:
        """Attach the receiving node."""
        self._dst = dst

    @property
    def dst(self) -> Optional["Node"]:
        return self._dst

    @property
    def busy(self) -> bool:
        """True while a packet occupies the transmitter."""
        if self._batch:
            return self._sim.now < self._busy_until
        return self._busy

    def transmission_time(self, packet: Packet) -> float:
        """Seconds the transmitter is occupied by ``packet``."""
        return packet.size * 8.0 / self.bandwidth_bps

    def set_bandwidth(self, bandwidth_bps: float) -> None:
        """Change the link rate at runtime (rate schedules use this as
        their step callback).  Takes effect at the next service start:
        the packet currently in the transmitter keeps the service time
        it was admitted with.  RED's idle-aging clock follows the new
        rate."""
        if bandwidth_bps <= 0:
            raise ConfigurationError(f"bandwidth must be > 0, got {bandwidth_bps}")
        if bandwidth_bps != self.bandwidth_bps:
            self.bandwidth_bps = bandwidth_bps
            setter = getattr(self.queue, "set_mean_packet_time", None)
            if setter is not None:
                setter(8.0 * 1000 / bandwidth_bps)
            self._emit("link.rate", bandwidth_bps=bandwidth_bps)

    # ------------------------------------------------------------------
    # outages
    # ------------------------------------------------------------------
    @property
    def is_down(self) -> bool:
        return self._down

    def set_down(self) -> None:
        """Take the link down: every packet arriving while down is
        destroyed (a natural generator of loss bursts).  Packets
        already in the queue or in flight are unaffected."""
        if not self._down:
            self._down = True
            self._emit("link.down")

    def set_up(self) -> None:
        """Restore the link."""
        if self._down:
            self._down = False
            self._emit("link.up")

    def schedule_outage(self, start: float, duration: float) -> None:
        """Convenience: go down at absolute time ``start`` for
        ``duration`` seconds."""
        if duration < 0:
            raise ConfigurationError("outage duration must be >= 0")
        self._sim.schedule_at(start, self.set_down)
        self._sim.schedule_at(start + duration, self.set_up)

    def send(self, packet: Packet) -> None:
        """Entry point: apply outages, tampering and loss injection,
        queue, and start the transmitter if idle."""
        if self._down:
            self.outage_drops += 1
            self._emit("link.injected_drop", packet=packet, reason="outage")
            return
        if self.tamper is not None:
            verdict = self.tamper.verdict(packet)
            if verdict == "corrupt":
                # Corruption is modelled as a drop: the checksum fails
                # at the receiver, so the packet might as well vanish.
                self._emit("link.injected_drop", packet=packet, reason="corrupt")
                return
            if verdict == "duplicate":
                self._emit("link.duplicate", packet=packet)
                self._admit(self.tamper.clone(packet))
        # Common path: _admit inlined (one Python frame per packet).
        if self._loss_active and self._loss.should_drop(packet):
            self._emit("link.injected_drop", packet=packet)
            return
        if self._batch:
            if self.queue.enqueue(packet):
                self._batched_kick()
            return
        if self.queue.enqueue(packet) and not self._busy:
            self._start_transmission()

    def _admit(self, packet: Packet) -> None:
        """Run loss injection and queueing for one packet copy."""
        if self._loss_active and self._loss.should_drop(packet):
            self._emit("link.injected_drop", packet=packet)
            return
        if self._batch:
            if self.queue.enqueue(packet):
                self._batched_kick()
            return
        if self.queue.enqueue(packet) and not self._busy:
            self._start_transmission()

    # ------------------------------------------------------------------
    # batched egress (opt-in)
    # ------------------------------------------------------------------
    def enable_batched_egress(self) -> None:
        """Opt into batched egress scheduling.

        The default transmitter costs two engine events per packet: a
        transmission-done event at service end plus a delivery event at
        the far end.  In batched mode an *uncontended* packet (admitted
        to an idle transmitter) skips the transmission-done event
        entirely — its delivery is scheduled directly at
        ``tx_time + delay`` and the transmitter just remembers it is
        occupied until ``now + tx_time``.  Packets that arrive during a
        busy period queue as usual and are drained by a single service
        event at the exact instant the transmitter frees up, so queue
        occupancy, drop decisions and every delivery timestamp are
        identical to the default mode; only the engine event stream is
        smaller (equivalence is pinned by tests/net/test_link_batched).

        Because serials and the pending heap differ, batched worlds are
        **not** digest-compatible with default worlds — hence opt-in,
        per link.  Two caveats:

        * ``link.tx`` records are emitted at service *start* carrying
          the same packet (completion is start + ``transmission_time``);
          the default mode emits at completion.
        * A link with a reorderer attached must stay unbatched (the
          per-packet jitter draw happens in a different event context);
          enabling raises :class:`ConfigurationError`.
        """
        if self.reorder is not None:
            raise ConfigurationError(
                f"link {self.name}: batched egress is incompatible with a reorderer"
            )
        if self.rate_schedule is not None:
            raise ConfigurationError(
                f"link {self.name}: batched egress is incompatible with a rate "
                "schedule (variable rate breaks the one-drain-per-busy-period "
                "invariant)"
            )
        if not self._batch:
            self._batch = True
            self._busy_until = self._sim.now
            self._drain_pending = False

    def _batched_kick(self) -> None:
        """An enqueue happened: serve it now if the transmitter is
        idle, else make sure one drain event covers the busy period."""
        if self._drain_pending:
            # A drain is already booked for ``_busy_until``; it owns the
            # next service start.  Serving here too would double-book
            # the slot when this send fires at exactly ``_busy_until``
            # (now >= _busy_until looks idle, but the drain has not run
            # yet) — the tie every tx-aligned workload hits.
            return
        now = self._sim.now
        if now >= self._busy_until:
            self._batched_serve(now)
        else:
            self._drain_pending = True
            self._sim.schedule_abs(self._busy_until, self._batched_drain)

    def _batched_serve(self, now: float) -> None:
        """Begin service of the head-of-line packet at ``now``."""
        packet = self.queue.dequeue()
        if packet is None:
            return
        ch = self._ch_tx
        if ch is None:
            ch = self._bind_trace_channels()
        if ch.subs:
            ch.emit(now, self.name, packet=packet)
        tx = packet.size * 8.0 / self.bandwidth_bps
        # Two-step sum: the default mode computes (now + tx) + delay, so
        # batched delivery timestamps must associate the same way.
        busy = now + tx
        self._busy_until = busy
        self._sim.schedule_abs(busy + self.delay, self._deliver, packet)

    def _batched_drain(self) -> None:
        """Service-start tick: the transmitter just freed up."""
        self._drain_pending = False
        now = self._sim.now
        self._batched_serve(now)
        if not self.queue.is_empty:
            self._drain_pending = True
            self._sim.schedule_abs(self._busy_until, self._batched_drain)

    def _queue_dropped(self, packet: Packet, reason: str) -> None:
        self._emit("link.drop", packet=packet, reason=reason, qlen=len(self.queue))

    def _start_transmission(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            return
        self._busy = True
        # transmission_time() inlined; the expression must stay exactly
        # ``size * 8.0 / bandwidth`` — a pre-divided constant would
        # round differently and shift every digest-pinned timestamp.
        self._sim.schedule(
            packet.size * 8.0 / self.bandwidth_bps, self._transmission_done, packet
        )

    def _transmission_done(self, packet: Packet) -> None:
        self._busy = False
        ch = self._ch_tx
        if ch is None:
            ch = self._bind_trace_channels()
        if ch.subs:
            ch.emit(self._sim.now, self.name, packet=packet)
        delay = self.delay
        if self.reorder is not None:
            delay += self.reorder.extra_delay(packet)
        self._sim.schedule(delay, self._deliver, packet)
        if not self.queue.is_empty:
            self._start_transmission()

    #: Exact reference count of a packet at the recycle check below when
    #: only the clean delivery chain holds it: the firing event's args
    #: tuple + this frame's local + maybe_release's argument binding +
    #: sys.getrefcount's temporary.  The consumers (host/agent receive)
    #: have already returned, so the count is independent of how deep
    #: that chain was; a forwarding router's queue, a retained trace
    #: record or any other holder raises it and recycling is skipped.
    _DELIVERED_CLEAN_REFS = 4

    def _deliver(self, packet: Packet) -> None:
        self.packets_delivered += 1
        self.bytes_delivered += packet.size
        if self._dst is None:
            raise ConfigurationError(f"link {self.name} has no destination node")
        self._dst.receive(packet)
        # End of the wire journey for packets consumed by an endpoint:
        # recycle into the packet pool unless anything still holds one.
        maybe_release(packet, self._DELIVERED_CLEAN_REFS)

    def _emit(self, category: str, **fields) -> None:
        if self.trace is not None:
            self.trace.emit(self._sim.now, category, self.name, **fields)
