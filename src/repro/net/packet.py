"""Packet model.

Sequence and acknowledgment numbers are in *packet units* (0-based), the
ns-2 convention the paper's graphs use ("the new ACK for packet 64").
An ACK carries the *next expected* packet number, so a duplicate ACK
repeats the same ``ackno`` and a partial ACK satisfies
``snd_una < ackno <= recover``.

Data packets default to 1000 bytes and ACKs to 40 bytes, the sizes used
throughout the paper's evaluation (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

DATA = "data"
ACK = "ack"

DEFAULT_DATA_BYTES = 1000
DEFAULT_ACK_BYTES = 40


class _UidSource:
    """The module-global packet-uid sequence.

    A named class (not ``itertools.count``) so the position can be read
    and rewound: packet uids are process-global state outside any one
    simulator, and :mod:`repro.snapshot` must capture and restore the
    sequence alongside a world for restored runs to mint the same uids
    an uninterrupted run would.
    """

    __slots__ = ("next_uid",)

    def __init__(self, start: int = 1):
        self.next_uid = start

    def __call__(self) -> int:
        uid = self.next_uid
        self.next_uid += 1
        return uid


_uid_counter = _UidSource()


def uid_state() -> int:
    """The next uid the module will assign (snapshot capture hook)."""
    return _uid_counter.next_uid


def set_uid_state(next_uid: int) -> None:
    """Rewind/advance the uid sequence (snapshot restore hook)."""
    if next_uid < 1:
        raise ValueError(f"packet uid state must be >= 1, got {next_uid}")
    _uid_counter.next_uid = next_uid


@dataclass(frozen=True)
class SackBlock:
    """A SACK block: the half-open packet range [start, end) received."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty SACK block [{self.start}, {self.end})")

    def __contains__(self, seqno: int) -> bool:
        return self.start <= seqno < self.end

    @property
    def count(self) -> int:
        return self.end - self.start


@dataclass
class Packet:
    """One simulated packet.

    Attributes
    ----------
    kind:
        ``DATA`` or ``ACK``.
    flow_id:
        Identifies the TCP connection the packet belongs to.
    src, dst:
        Node names; routers forward on ``dst``.
    seqno:
        For DATA: the packet sequence number.  For ACK: unused (0).
    ackno:
        For ACK: the next expected packet number (cumulative).
    size:
        Bytes on the wire (drives transmission delay).
    sack_blocks:
        SACK information (most recently changed block first), empty for
        non-SACK receivers.
    ecn_capable:
        DATA: sender supports ECN (ECT codepoint); an ECN-enabled RED
        gateway marks such packets instead of dropping them early.
    ecn_marked:
        DATA: congestion-experienced mark set by a gateway.
    ecn_echo:
        ACK: the receiver is echoing a congestion mark back (ECE).
    is_retransmit:
        True when the sender marked this DATA packet as a retransmission
        (used by Karn's rule and by the trace tooling).
    sent_at:
        Time the sender transmitted this copy (stamped by the agent).
    uid:
        Globally unique id for this packet instance; retransmissions get
        fresh uids.
    """

    kind: str
    flow_id: int
    src: str
    dst: str
    seqno: int = 0
    ackno: int = 0
    size: int = DEFAULT_DATA_BYTES
    sack_blocks: List[SackBlock] = field(default_factory=list)
    ecn_capable: bool = False
    ecn_marked: bool = False
    ecn_echo: bool = False
    is_retransmit: bool = False
    sent_at: float = 0.0
    uid: int = field(default_factory=_uid_counter)

    @property
    def is_data(self) -> bool:
        return self.kind == DATA

    @property
    def is_ack(self) -> bool:
        return self.kind == ACK

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_data:
            rtx = " rtx" if self.is_retransmit else ""
            return f"<DATA f{self.flow_id} seq={self.seqno}{rtx} {self.src}->{self.dst}>"
        sacks = f" sack={[(b.start, b.end) for b in self.sack_blocks]}" if self.sack_blocks else ""
        return f"<ACK f{self.flow_id} ack={self.ackno}{sacks} {self.src}->{self.dst}>"


def data_packet(
    flow_id: int,
    src: str,
    dst: str,
    seqno: int,
    size: int = DEFAULT_DATA_BYTES,
    is_retransmit: bool = False,
) -> Packet:
    """Build a DATA packet."""
    return Packet(
        kind=DATA,
        flow_id=flow_id,
        src=src,
        dst=dst,
        seqno=seqno,
        size=size,
        is_retransmit=is_retransmit,
    )


def ack_packet(
    flow_id: int,
    src: str,
    dst: str,
    ackno: int,
    size: int = DEFAULT_ACK_BYTES,
    sack_blocks: Optional[List[SackBlock]] = None,
) -> Packet:
    """Build an ACK packet (optionally carrying SACK blocks)."""
    return Packet(
        kind=ACK,
        flow_id=flow_id,
        src=src,
        dst=dst,
        ackno=ackno,
        size=size,
        sack_blocks=list(sack_blocks or ()),
    )


def clone_packet(packet: Packet) -> Packet:
    """An independent wire copy of ``packet`` with a fresh uid — what a
    duplicating network element puts on the link next to the original."""
    return replace(
        packet,
        sack_blocks=list(packet.sack_blocks),
        uid=_uid_counter(),
    )


def merge_ranges(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge overlapping/adjacent half-open integer ranges (helper for
    building SACK blocks from a receiver's out-of-order buffer)."""
    if not ranges:
        return []
    ordered = sorted(ranges)
    merged = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged
