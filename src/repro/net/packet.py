"""Packet model.

Sequence and acknowledgment numbers are in *packet units* (0-based), the
ns-2 convention the paper's graphs use ("the new ACK for packet 64").
An ACK carries the *next expected* packet number, so a duplicate ACK
repeats the same ``ackno`` and a partial ACK satisfies
``snd_una < ackno <= recover``.

Data packets default to 1000 bytes and ACKs to 40 bytes, the sizes used
throughout the paper's evaluation (Section 3.1).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Optional, Tuple

DATA = "data"
ACK = "ack"

DEFAULT_DATA_BYTES = 1000
DEFAULT_ACK_BYTES = 40


class _UidSource:
    """The module-global packet-uid sequence.

    A named class (not ``itertools.count``) so the position can be read
    and rewound: packet uids are process-global state outside any one
    simulator, and :mod:`repro.snapshot` must capture and restore the
    sequence alongside a world for restored runs to mint the same uids
    an uninterrupted run would.
    """

    __slots__ = ("next_uid",)

    def __init__(self, start: int = 1):
        self.next_uid = start

    def __call__(self) -> int:
        uid = self.next_uid
        self.next_uid += 1
        return uid


_uid_counter = _UidSource()


def uid_state() -> int:
    """The next uid the module will assign (snapshot capture hook)."""
    return _uid_counter.next_uid


def set_uid_state(next_uid: int) -> None:
    """Rewind/advance the uid sequence (snapshot restore hook)."""
    if next_uid < 1:
        raise ValueError(f"packet uid state must be >= 1, got {next_uid}")
    _uid_counter.next_uid = next_uid


@dataclass(frozen=True)
class SackBlock:
    """A SACK block: the half-open packet range [start, end) received."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty SACK block [{self.start}, {self.end})")

    def __contains__(self, seqno: int) -> bool:
        return self.start <= seqno < self.end

    @property
    def count(self) -> int:
        return self.end - self.start


class Packet:
    """One simulated packet.

    A hand-written ``__slots__`` class (it was a dataclass once): packet
    construction and field access dominate many-flow scenes, and slots
    cut both the per-instance dict and the allocation cost.  The
    dataclass-era constructor signature, equality semantics and
    checkpoint state (a plain field dict — see ``__getstate__``) are
    preserved exactly.

    Attributes
    ----------
    kind:
        ``DATA`` or ``ACK``.
    flow_id:
        Identifies the TCP connection the packet belongs to.
    src, dst:
        Node names; routers forward on ``dst``.
    seqno:
        For DATA: the packet sequence number.  For ACK: unused (0).
    ackno:
        For ACK: the next expected packet number (cumulative).
    size:
        Bytes on the wire (drives transmission delay).
    sack_blocks:
        SACK information (most recently changed block first), empty for
        non-SACK receivers.
    ecn_capable:
        DATA: sender supports ECN (ECT codepoint); an ECN-enabled RED
        gateway marks such packets instead of dropping them early.
    ecn_marked:
        DATA: congestion-experienced mark set by a gateway.
    ecn_echo:
        ACK: the receiver is echoing a congestion mark back (ECE).
    is_retransmit:
        True when the sender marked this DATA packet as a retransmission
        (used by Karn's rule and by the trace tooling).
    sent_at:
        Time the sender transmitted this copy (stamped by the agent).
    uid:
        Globally unique id for this packet instance; retransmissions get
        fresh uids.
    """

    __slots__ = _FIELDS = (
        "kind",
        "flow_id",
        "src",
        "dst",
        "seqno",
        "ackno",
        "size",
        "sack_blocks",
        "ecn_capable",
        "ecn_marked",
        "ecn_echo",
        "is_retransmit",
        "sent_at",
        "uid",
    )

    def __init__(
        self,
        kind: str,
        flow_id: int,
        src: str,
        dst: str,
        seqno: int = 0,
        ackno: int = 0,
        size: int = DEFAULT_DATA_BYTES,
        sack_blocks: Optional[List[SackBlock]] = None,
        ecn_capable: bool = False,
        ecn_marked: bool = False,
        ecn_echo: bool = False,
        is_retransmit: bool = False,
        sent_at: float = 0.0,
        uid: Optional[int] = None,
    ):
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seqno = seqno
        self.ackno = ackno
        self.size = size
        self.sack_blocks = [] if sack_blocks is None else sack_blocks
        self.ecn_capable = ecn_capable
        self.ecn_marked = ecn_marked
        self.ecn_echo = ecn_echo
        self.is_retransmit = is_retransmit
        self.sent_at = sent_at
        self.uid = _uid_counter() if uid is None else uid

    @property
    def is_data(self) -> bool:
        return self.kind == DATA

    @property
    def is_ack(self) -> bool:
        return self.kind == ACK

    def __eq__(self, other) -> bool:
        # Same semantics the dataclass generated: all fields, same type.
        if other.__class__ is not Packet:
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self._FIELDS
        )

    # The dataclass was eq-without-frozen, hence unhashable; keep that.
    __hash__ = None  # type: ignore[assignment]

    def __getstate__(self):
        """A plain field dict in declaration order — byte-identical to
        the ``__dict__`` the pre-slots dataclass pickled/digested."""
        return {name: getattr(self, name) for name in self._FIELDS}

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_data:
            rtx = " rtx" if self.is_retransmit else ""
            return f"<DATA f{self.flow_id} seq={self.seqno}{rtx} {self.src}->{self.dst}>"
        sacks = f" sack={[(b.start, b.end) for b in self.sack_blocks]}" if self.sack_blocks else ""
        return f"<ACK f{self.flow_id} ack={self.ackno}{sacks} {self.src}->{self.dst}>"


class PacketPool:
    """A free list of :class:`Packet` objects.

    Pooling rules (see docs/PERFORMANCE.md):

    * :func:`data_packet` / :func:`ack_packet` draw from the pool; a
      reused packet has **every** field reassigned (including a fresh
      ``sack_blocks`` list and a freshly minted uid), so a pooled
      acquisition is indistinguishable from a cold construction —
      the uid sequence, and therefore every digest, is unchanged.
    * :func:`maybe_release` returns a packet only when the exact,
      locally known clean reference chain holds it (checked via
      ``sys.getrefcount``).  Any extra holder — a retained trace
      record, a test local, a fault-injection buffer — makes the count
      differ and the packet is simply leaked to the GC instead.
      Skipping is always safe; recycling is the opportunistic win.
    * :func:`drain_packet_pool` empties the free list; snapshot capture
      calls it so pickles and digests can never observe pooled garbage.
    """

    __slots__ = ("free", "max_free", "reused", "released", "skipped")

    def __init__(self, max_free: int = 1024):
        self.free: List[Packet] = []
        self.max_free = max_free
        self.reused = 0
        self.released = 0
        self.skipped = 0

    def stats(self) -> dict:
        return {
            "free": len(self.free),
            "reused": self.reused,
            "released": self.released,
            "skipped": self.skipped,
        }


_pool = PacketPool()
_getrefcount = sys.getrefcount

#: Reference count of a packet at the :func:`maybe_release` call when
#: exactly the known clean chain holds it:
#:   the caller's local + the releaser's argument binding + the
#:   temporary reference ``sys.getrefcount`` itself holds.
#: Anything beyond that means someone still cares about the packet.
_CLEAN_REFS = 3


def packet_pool() -> PacketPool:
    """The process-global packet pool (introspection/tests)."""
    return _pool


def drain_packet_pool() -> int:
    """Empty the free list (snapshot-capture hygiene hook).  Returns
    the number of pooled packets discarded."""
    drained = len(_pool.free)
    _pool.free.clear()
    return drained


def maybe_release(packet: Packet, expected_refs: int = _CLEAN_REFS) -> bool:
    """Recycle ``packet`` into the pool iff nothing else references it.

    ``expected_refs`` is the exact reference count of the clean chain at
    this call site (default: a caller holding one local).  Call sites
    deeper in a known call chain pass their own constant.  A mismatch
    in either direction skips recycling — lower counts mean the caller
    is not holding the packet the way the contract assumes, higher
    counts mean someone (trace record, metrics, test) still holds it.
    """
    if _getrefcount(packet) != expected_refs:
        _pool.skipped += 1
        return False
    _pool.released += 1
    free = _pool.free
    if len(free) < _pool.max_free:
        free.append(packet)
    return True


def data_packet(
    flow_id: int,
    src: str,
    dst: str,
    seqno: int,
    size: int = DEFAULT_DATA_BYTES,
    is_retransmit: bool = False,
) -> Packet:
    """Build a DATA packet (drawing from the packet pool)."""
    free = _pool.free
    if free:
        _pool.reused += 1
        packet = free.pop()
        packet.kind = DATA
        packet.flow_id = flow_id
        packet.src = src
        packet.dst = dst
        packet.seqno = seqno
        packet.ackno = 0
        packet.size = size
        packet.sack_blocks = []
        packet.ecn_capable = False
        packet.ecn_marked = False
        packet.ecn_echo = False
        packet.is_retransmit = is_retransmit
        packet.sent_at = 0.0
        packet.uid = _uid_counter()
        return packet
    return Packet(
        kind=DATA,
        flow_id=flow_id,
        src=src,
        dst=dst,
        seqno=seqno,
        size=size,
        is_retransmit=is_retransmit,
    )


def ack_packet(
    flow_id: int,
    src: str,
    dst: str,
    ackno: int,
    size: int = DEFAULT_ACK_BYTES,
    sack_blocks: Optional[List[SackBlock]] = None,
) -> Packet:
    """Build an ACK packet (optionally carrying SACK blocks), drawing
    from the packet pool."""
    free = _pool.free
    if free:
        _pool.reused += 1
        packet = free.pop()
        packet.kind = ACK
        packet.flow_id = flow_id
        packet.src = src
        packet.dst = dst
        packet.seqno = 0
        packet.ackno = ackno
        packet.size = size
        packet.sack_blocks = list(sack_blocks or ())
        packet.ecn_capable = False
        packet.ecn_marked = False
        packet.ecn_echo = False
        packet.is_retransmit = False
        packet.sent_at = 0.0
        packet.uid = _uid_counter()
        return packet
    return Packet(
        kind=ACK,
        flow_id=flow_id,
        src=src,
        dst=dst,
        ackno=ackno,
        size=size,
        sack_blocks=list(sack_blocks or ()),
    )


def clone_packet(packet: Packet) -> Packet:
    """An independent wire copy of ``packet`` with a fresh uid — what a
    duplicating network element puts on the link next to the original."""
    return Packet(
        kind=packet.kind,
        flow_id=packet.flow_id,
        src=packet.src,
        dst=packet.dst,
        seqno=packet.seqno,
        ackno=packet.ackno,
        size=packet.size,
        sack_blocks=list(packet.sack_blocks),
        ecn_capable=packet.ecn_capable,
        ecn_marked=packet.ecn_marked,
        ecn_echo=packet.ecn_echo,
        is_retransmit=packet.is_retransmit,
        sent_at=packet.sent_at,
        uid=_uid_counter(),
    )


def merge_ranges(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge overlapping/adjacent half-open integer ranges (helper for
    building SACK blocks from a receiver's out-of-order buffer)."""
    if not ranges:
        return []
    ordered = sorted(ranges)
    merged = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged
