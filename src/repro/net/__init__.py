"""Network substrate: packets, links, queues, loss modules, nodes, topologies.

This subpackage provides the packet-level plumbing the TCP agents run
over.  The model follows ns-2 closely: unidirectional links with a
transmission + propagation delay and an ingress queue discipline,
store-and-forward routers with static shortest-path routing, and hosts
that deliver packets to per-flow agents.
"""

from repro.net.packet import ACK, DATA, Packet, SackBlock
from repro.net.fairqueue import FairQueue
from repro.net.queues import DropTailQueue, PacketQueue
from repro.net.red import RedParams, RedQueue
from repro.net.loss import (
    AckLoss,
    Composite,
    DeterministicLoss,
    GilbertElliott,
    LossModule,
    NoLoss,
    PeriodicLoss,
    UniformLoss,
)
from repro.net.reorder import (
    DeterministicReorderer,
    JitterReorderer,
    RandomReorderer,
    Reorderer,
)
from repro.net.link import Link
from repro.net.node import Agent, Host, Node, Router
from repro.net.network import Network
from repro.net.parkinglot import ParkingLot, ParkingLotParams
from repro.net.topology import Dumbbell, DumbbellParams
from repro.net.varlink import RateSchedule, bufferbloat_limit, bufferbloat_queue

__all__ = [
    "ACK",
    "DATA",
    "Packet",
    "SackBlock",
    "PacketQueue",
    "DropTailQueue",
    "FairQueue",
    "RedParams",
    "RedQueue",
    "LossModule",
    "NoLoss",
    "UniformLoss",
    "DeterministicLoss",
    "GilbertElliott",
    "PeriodicLoss",
    "Composite",
    "AckLoss",
    "Reorderer",
    "RandomReorderer",
    "DeterministicReorderer",
    "JitterReorderer",
    "Link",
    "RateSchedule",
    "bufferbloat_limit",
    "bufferbloat_queue",
    "Node",
    "Host",
    "Router",
    "Agent",
    "Network",
    "Dumbbell",
    "DumbbellParams",
    "ParkingLot",
    "ParkingLotParams",
]
