"""Random Early Detection (RED) gateway.

Implements the algorithm of Floyd & Jacobson, "Random Early Detection
Gateways for Congestion Avoidance" (ToN 1993), which the paper uses for
the Figure 6 experiments:

* exponentially weighted moving average of the instantaneous queue
  length, with the idle-period adjustment (the average decays while the
  link sits empty as if small packets had been arriving);
* for ``min_th <= avg < max_th`` the packet is dropped with probability
  ``p_a = p_b / (1 - count * p_b)`` where ``p_b = max_p * (avg - min_th)
  / (max_th - min_th)`` and ``count`` is the number of packets accepted
  since the last drop — this spreads drops out and avoids bursts of
  drops against a single connection;
* for ``avg >= max_th`` every packet is dropped;
* a physical buffer overflow always drops.

The paper's configuration (Table 4): min_th 5, max_th 20, max_p 0.02,
w_q 0.002, buffer 25 packets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.net.queues import PacketQueue
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream


@dataclass(frozen=True)
class RedParams:
    """RED gateway parameters (defaults = paper Table 4)."""

    min_th: float = 5.0
    max_th: float = 20.0
    max_p: float = 0.02
    weight: float = 0.002
    limit: int = 25
    # Mean packet transmission time used by the idle adjustment.  When 0
    # the queue derives it from the link on attach.
    mean_pkt_time: float = 0.0
    # Mark ECN-capable packets instead of early-dropping them
    # (RFC 3168-style); forced and overflow drops still drop.
    ecn: bool = False
    # "Gentle" RED (Floyd, 2000): between max_th and 2*max_th the drop
    # probability ramps linearly from max_p to 1 instead of jumping to
    # a forced drop — far less sensitive to max_p mistuning.
    gentle: bool = False

    def validate(self) -> None:
        if not 0 < self.weight <= 1:
            raise ConfigurationError(f"RED weight must be in (0, 1], got {self.weight}")
        if self.min_th < 0 or self.max_th <= self.min_th:
            raise ConfigurationError(
                f"RED thresholds must satisfy 0 <= min_th < max_th, got {self.min_th}, {self.max_th}"
            )
        if not 0 < self.max_p <= 1:
            raise ConfigurationError(f"RED max_p must be in (0, 1], got {self.max_p}")
        if self.limit < 1:
            raise ConfigurationError("RED limit must be >= 1")


class RedQueue(PacketQueue):
    """RED queue discipline.

    Parameters
    ----------
    sim:
        Needed for the idle-time average adjustment.
    params:
        :class:`RedParams`.
    rng:
        Random stream for the early-drop coin flips.
    """

    def __init__(
        self,
        sim: Simulator,
        params: RedParams,
        rng: RngStream,
        name: str = "red",
    ):
        params.validate()
        super().__init__(limit=params.limit, name=name)
        self._sim = sim
        self.params = params
        self._rng = rng
        self.avg = 0.0
        self._count = -1  # packets since last drop; -1 = below min_th
        self._idle_since = sim.now  # link idle start time (queue empty)
        self._mean_pkt_time = params.mean_pkt_time or 0.01
        self.early_drops = 0
        self.forced_drops = 0
        self.overflow_drops = 0
        self.ecn_marks = 0
        self._derive_params()

    # ------------------------------------------------------------------
    # derived caches / checkpointing
    # ------------------------------------------------------------------
    def _derive_params(self) -> None:
        """Flatten the (frozen) params onto the instance: ``enqueue``
        runs per packet and a local attribute beats two lookups."""
        p = self.params
        self._w = p.weight
        self._min_th = p.min_th
        self._max_th = p.max_th
        self._max_p = p.max_p
        self._gentle = p.gentle
        self._ecn = p.ecn
        self._forced_th = 2 * p.max_th if p.gentle else p.max_th

    _DERIVED = ("_w", "_min_th", "_max_th", "_max_p", "_gentle", "_ecn", "_forced_th")

    def __getstate__(self):
        """The live ``__dict__`` minus the derived param caches, so
        checkpoints and golden digests match a cache-free queue."""
        state = self.__dict__.copy()
        for key in self._DERIVED:
            del state[key]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._derive_params()

    def set_mean_packet_time(self, seconds: float) -> None:
        """Set the typical transmission time used to age ``avg`` over
        idle periods (the owning link calls this on attach)."""
        if seconds > 0:
            self._mean_pkt_time = seconds

    def _update_average(self) -> None:
        """Advance the EWMA (and the idle epoch) for one arriving packet.

        This is the single authoritative implementation — ``enqueue``
        calls it rather than inlining a copy, so the two can never
        drift apart again (they once did: the idle-epoch advance below
        was fixed in the inlined copy only).

        The idle epoch must survive drops: a packet refused at an
        empty queue leaves the link idle, and wiping the epoch here
        would disable the idle decay exactly when overload makes
        every arrival a forced drop (avg then never recovers — a
        lockout the many-flow scenes hit).  Advance it instead (the
        decay below consumes the idle span so far); accepts make the
        queue busy and ``dequeue`` restarts the clock on empty.
        """
        q = len(self._items)
        w = self._w
        if q > 0 or self._idle_since is None:
            self.avg = (1 - w) * self.avg + w * q
        else:
            # Idle adjustment: decay avg as if m small packets had arrived
            # while the queue sat empty.
            idle = self._sim.now - self._idle_since
            m = int(idle / self._mean_pkt_time)
            self.avg *= (1 - w) ** m
            self.avg = (1 - w) * self.avg  # the arriving packet's update (q == 0)
        self._idle_since = self._sim.now if q == 0 else None

    def enqueue(self, packet: Packet) -> bool:
        self._update_average()
        avg = self.avg
        q = len(self._items)
        if q >= self.limit:
            self.overflow_drops += 1
            self._count = 0
            return self._drop(packet, "overflow")
        max_th = self._max_th
        if self._gentle and max_th <= avg < 2 * max_th:
            # Gentle region: ramp from max_p to 1 over [max_th, 2max_th].
            self._count += 1
            pb = self._max_p + (1.0 - self._max_p) * (avg - max_th) / max_th
            denom = 1.0 - self._count * pb
            pa = 1.0 if denom <= 0 else min(1.0, pb / denom)
            if self._rng.bernoulli(pa):
                self._count = 0
                if self._ecn and packet.ecn_capable:
                    packet.ecn_marked = True
                    self.ecn_marks += 1
                    return self._accept(packet)
                self.early_drops += 1
                return self._drop(packet, "early")
            return self._accept(packet)
        if avg >= self._forced_th:
            self.forced_drops += 1
            self._count = 0
            return self._drop(packet, "forced")
        if avg >= self._min_th:
            self._count += 1
            pb = self._max_p * (avg - self._min_th) / (max_th - self._min_th)
            denom = 1.0 - self._count * pb
            pa = 1.0 if denom <= 0 else min(1.0, pb / denom)
            if self._rng.bernoulli(pa):
                self._count = 0
                if self._ecn and packet.ecn_capable:
                    packet.ecn_marked = True
                    self.ecn_marks += 1
                    return self._accept(packet)
                self.early_drops += 1
                return self._drop(packet, "early")
            return self._accept(packet)
        self._count = -1
        self._items.append(packet)  # _accept inlined
        self.enqueues += 1
        return True

    def dequeue(self):
        packet = super().dequeue()
        if not self._items:
            self._idle_since = self._sim.now
        return packet
