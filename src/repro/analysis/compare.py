"""Variant comparison: the question a downstream user actually has —
"which recovery scheme wins on *my* scenario?" — answered with a
variants × seeds matrix and replication statistics.

The scenario is any JSON-style spec accepted by
:mod:`repro.experiments.scenario_file`; the variant of flow 1 (the
measured flow) is swept, seeds are varied, and per-variant summaries of
completion time, goodput, retransmissions and timeouts come back with
confidence intervals.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.replication import Summary, summarize
from repro.experiments.scenario_file import run_scenario
from repro.metrics.throughput import effective_throughput_bps
from repro.viz.ascii import format_table


@dataclass
class ComparisonConfig:
    """A comparison campaign.

    Attributes
    ----------
    scenario:
        Scenario spec (see ``scenario_file``).  Flow 1 must be bounded
        (``packets``) — its completion time is the primary metric.
    variants:
        Variants to sweep into flow 1.
    seeds:
        Seeds; each (variant, seed) pair is one run.
    """

    scenario: Dict[str, Any]
    variants: Sequence[str] = ("newreno", "sack", "rr")
    seeds: Sequence[int] = (1, 2, 3, 4, 5)
    confidence: float = 0.95


@dataclass
class ComparisonResult:
    config: ComparisonConfig
    # variant -> metric name -> Summary
    summaries: Dict[str, Dict[str, Summary]] = field(default_factory=dict)

    def metric(self, variant: str, name: str) -> Summary:
        return self.summaries[variant][name]

    def ranking(self, metric: str = "complete_time", lower_is_better: bool = True):
        """Variants ordered best-first by the metric's mean."""
        ordered = sorted(
            self.summaries,
            key=lambda v: self.summaries[v][metric].mean,
            reverse=not lower_is_better,
        )
        return ordered


def _one_run(spec: Dict[str, Any], variant: str, seed: int) -> Dict[str, float]:
    run_spec = copy.deepcopy(spec)
    run_spec["seed"] = seed
    run_spec["flows"][0]["variant"] = variant
    scenario = run_scenario(run_spec)
    sender, stats = scenario.flow(1)
    if not sender.completed:
        raise ConfigurationError(
            f"flow 1 ({variant}, seed {seed}) did not finish within the"
            f" scenario duration — raise 'duration' or shrink 'packets'"
        )
    return {
        "complete_time": sender.complete_time,
        "goodput_bps": effective_throughput_bps(stats),
        "retransmits": float(sender.retransmits),
        "timeouts": float(sender.timeouts),
        "drops": float(stats.drops_observed),
    }


def compare_variants(config: ComparisonConfig) -> ComparisonResult:
    """Run the matrix and summarise per variant."""
    flows = config.scenario.get("flows") or []
    if not flows or "packets" not in flows[0]:
        raise ConfigurationError(
            "comparison scenarios need a bounded flow 1 ('packets')"
        )
    if not config.variants or not config.seeds:
        raise ConfigurationError("need at least one variant and one seed")
    result = ComparisonResult(config=config)
    for variant in config.variants:
        collected: Dict[str, List[float]] = {}
        for seed in config.seeds:
            metrics = _one_run(config.scenario, variant, seed)
            for key, value in metrics.items():
                collected.setdefault(key, []).append(value)
        result.summaries[variant] = {
            key: summarize(values, config.confidence)
            for key, values in collected.items()
        }
    return result


def format_comparison(result: ComparisonResult) -> str:
    """Render the campaign as an aligned table, best variant first."""
    order = result.ranking()
    rows = []
    for variant in order:
        metrics = result.summaries[variant]
        rows.append(
            [
                variant,
                f"{metrics['complete_time'].mean:.2f} ± {metrics['complete_time'].ci_half_width:.2f}",
                f"{metrics['goodput_bps'].mean / 1000:.0f}",
                f"{metrics['retransmits'].mean:.1f}",
                f"{metrics['timeouts'].mean:.1f}",
                f"{metrics['drops'].mean:.1f}",
            ]
        )
    n = len(result.config.seeds)
    header = (
        f"variant comparison over {n} seeds"
        f" (flow 1 of the scenario; best completion time first)\n"
    )
    return header + format_table(
        ["variant", "done at s", "goodput kbps", "rtx", "RTOs", "drops"], rows
    )
