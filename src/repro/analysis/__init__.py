"""High-level analysis: run variant matrices over a scenario and
aggregate across seeds."""

from repro.analysis.compare import (
    ComparisonConfig,
    ComparisonResult,
    compare_variants,
    format_comparison,
)

__all__ = [
    "ComparisonConfig",
    "ComparisonResult",
    "compare_variants",
    "format_comparison",
]
