"""Per-flow behavioral feature extraction from ``tcp.*`` trace records.

A :class:`FlowTraceCollector` subscribes to the trace bus and records,
per flow, the raw event series a run emits anyway for metrics and
invariant checking: sends, ACKs, cwnd samples, recovery enter/exit
markers and timeouts.  :func:`extract_features` then reduces a
:class:`FlowTrace` to a fixed-length :class:`FeatureVector` of shape
descriptors chosen to separate the recovery *algorithms*, not the
scenarios:

* how the cwnd trajectory responds to a loss event (Tahoe collapses to
  one packet; Reno/New-Reno/SACK halve; RR leaves cwnd untouched until
  recovery exits);
* how tightly duplicate ACKs are coupled to transmissions during
  recovery (window inflation emits a cwnd move per duplicate ACK,
  pipe/actnum control emits none);
* the recovery-exit burst signature (the "big ACK" burst RR
  eliminates);
* backoffs per loss window — the paper's central discriminator: RR
  backs off exactly once per window of lost data, Reno once per loss.

Determinism contract: a feature vector is a pure function of the
recorded event sequence.  Extraction uses only arrival-ordered lists
and fixed-order float arithmetic, so the same seed yields bit-identical
vectors across serial/parallel sweeps and across the compiled and
pure-python engine backends (tests/ident/test_determinism.py).

The collector keys flows by the numeric id parsed out of the emitting
source label and *discards* the label itself: ``tcp.*`` sources are
``"<variant>/f<flow_id>"``, and letting the variant prefix reach the
feature space would turn behavior identification into string matching
(tests/ident/test_features.py proves a renamed variant classifies
identically).  ``tcp.rr`` records are ignored for the same reason —
they are RR-only instrumentation, not behavior.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.tracing import TraceBus, TraceRecord

#: Canonical feature order.  Appending is safe; reordering or renaming
#: invalidates every committed model and golden vector.
FEATURE_NAMES: Tuple[str, ...] = (
    "recovery_entry_rate",
    "timeout_rate",
    "loss_cwnd_drop",
    "entry_cwnd_drop",
    "cwnd_moves_per_dupack",
    "recovery_new_data_per_dupack",
    "recovery_retx_per_episode",
    "retx_on_new_ack_frac",
    "episode_span_rtts",
    "exit_burst",
    "exit_cwnd_ratio",
    "post_loss_growth",
    "backoffs_per_loss_window",
)

#: Trace categories the collector taps (see FlowTraceCollector).
TCP_CATEGORIES: Tuple[str, ...] = (
    "tcp.send",
    "tcp.ack",
    "tcp.cwnd",
    "tcp.recovery_enter",
    "tcp.recovery_exit",
    "tcp.timeout",
)


@dataclass(frozen=True)
class FeatureVector:
    """A fixed-order vector of behavioral features for one flow."""

    names: Tuple[str, ...]
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.names) != len(self.values):
            raise ValueError(
                f"{len(self.names)} names vs {len(self.values)} values"
            )

    def as_dict(self) -> Dict[str, float]:
        return dict(zip(self.names, self.values))

    def __getitem__(self, name: str) -> float:
        try:
            return self.values[self.names.index(name)]
        except ValueError:
            raise KeyError(name) from None

    def to_json(self) -> str:
        """Canonical JSON: full ``repr`` precision, fixed key order —
        two behaviorally identical runs serialize byte-identically."""
        return json.dumps(
            {name: value for name, value in zip(self.names, self.values)},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FeatureVector":
        payload = json.loads(text)
        names = tuple(sorted(payload))
        return cls(names=names, values=tuple(float(payload[n]) for n in names))

    def reordered(self, names: Sequence[str]) -> "FeatureVector":
        """The same vector in the given feature order."""
        mapping = self.as_dict()
        return FeatureVector(
            names=tuple(names), values=tuple(mapping[n] for n in names)
        )


@dataclass
class FlowTrace:
    """Raw per-flow event series, in bus arrival order.

    Every entry leads with the global arrival index, so events sharing
    a simulation timestamp (an exit marker and the sends its ACK
    released, say) keep their causal order.
    """

    flow_id: int
    #: (order, t, cwnd)
    cwnd: List[Tuple[int, float, float]] = field(default_factory=list)
    #: (order, t, ackno, duplicate)
    acks: List[Tuple[int, float, int, bool]] = field(default_factory=list)
    #: (order, t, seqno, retransmit)
    sends: List[Tuple[int, float, int, bool]] = field(default_factory=list)
    #: (order, t, recover)
    enters: List[Tuple[int, float, int]] = field(default_factory=list)
    #: (order, t)
    exits: List[Tuple[int, float]] = field(default_factory=list)
    #: (order, t)
    timeouts: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def events(self) -> int:
        return (
            len(self.cwnd)
            + len(self.acks)
            + len(self.sends)
            + len(self.enters)
            + len(self.exits)
            + len(self.timeouts)
        )


def _flow_id_of(source: str) -> Optional[int]:
    """Parse the flow id out of a ``tcp.*`` source label.

    The label is ``"<variant>/f<flow_id>"``; everything before the
    final ``/f`` is deliberately thrown away (see module docstring).
    """
    head, sep, tail = source.rpartition("/f")
    if not sep or not head:
        return None
    try:
        return int(tail)
    except ValueError:
        return None


class FlowTraceCollector:
    """Accumulate :class:`FlowTrace` series from a live trace bus.

    Usage::

        collector = FlowTraceCollector()
        collector.install(scenario.dumbbell.net.trace)
        scenario.sim.run(until=...)
        collector.uninstall()
        vector = collector.features(flow_id=1)

    The collector is a passive subscriber: installing it changes no
    behavior and no state digest, only which emissions build records.
    """

    def __init__(self) -> None:
        self.flows: Dict[int, FlowTrace] = {}
        self._order = 0
        self._bus: Optional[TraceBus] = None

    # ------------------------------------------------------------------
    # bus lifecycle
    # ------------------------------------------------------------------
    def install(self, bus: TraceBus) -> "FlowTraceCollector":
        if self._bus is not None:
            raise ValueError("collector is already installed on a bus")
        self._bus = bus
        bus.subscribe_many(TCP_CATEGORIES, self._on_record)
        return self

    def uninstall(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe_many(TCP_CATEGORIES, self._on_record)
            self._bus = None

    # ------------------------------------------------------------------
    # record intake
    # ------------------------------------------------------------------
    def _trace_for(self, source: str) -> Optional[FlowTrace]:
        flow_id = _flow_id_of(source)
        if flow_id is None:
            return None
        trace = self.flows.get(flow_id)
        if trace is None:
            trace = self.flows[flow_id] = FlowTrace(flow_id=flow_id)
        return trace

    def _on_record(self, record: TraceRecord) -> None:
        trace = self._trace_for(record.source)
        if trace is None:
            return
        order = self._order
        self._order += 1
        fields = record.fields
        category = record.category
        if category == "tcp.send":
            trace.sends.append(
                (order, record.time, fields["seqno"], bool(fields["retransmit"]))
            )
        elif category == "tcp.ack":
            trace.acks.append(
                (order, record.time, fields["ackno"], bool(fields["duplicate"]))
            )
        elif category == "tcp.cwnd":
            trace.cwnd.append((order, record.time, float(fields["cwnd"])))
        elif category == "tcp.recovery_enter":
            trace.enters.append((order, record.time, int(fields["recover"])))
        elif category == "tcp.recovery_exit":
            trace.exits.append((order, record.time))
        elif category == "tcp.timeout":
            trace.timeouts.append((order, record.time))

    # ------------------------------------------------------------------
    # extraction
    # ------------------------------------------------------------------
    def features(self, flow_id: int) -> FeatureVector:
        trace = self.flows.get(flow_id)
        if trace is None:
            raise KeyError(f"no tcp.* records collected for flow {flow_id}")
        return extract_features(trace)


# ----------------------------------------------------------------------
# feature extraction
# ----------------------------------------------------------------------
def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _rtt_estimate(trace: FlowTrace) -> float:
    """Median send→ACK round trip, matched through sequence numbers.

    A new ACK for ``ackno`` acknowledges the segment ``ackno - 1``; the
    gap back to that segment's first transmission is a true RTT sample
    (queueing included).  Falls back to the new-ACK inter-arrival
    median — the ACK clock — only when no sends matched, and to 0.1 s
    on a trace with no usable ACKs at all.
    """
    first_sent: Dict[int, float] = {}
    for _, t, seqno, retransmit in trace.sends:
        if not retransmit and seqno not in first_sent:
            first_sent[seqno] = t
    samples = []
    for _, t, ackno, dup in trace.acks:
        if dup:
            continue
        sent = first_sent.get(ackno - 1)
        if sent is not None and t > sent:
            samples.append(t - sent)
    estimate = _median(samples)
    if estimate > 0.0:
        return estimate
    times = [t for _, t, _, dup in trace.acks if not dup]
    gaps = [b - a for a, b in zip(times, times[1:]) if b > a]
    estimate = _median(gaps)
    return estimate if estimate > 0.0 else 0.1


def _cwnd_value_at(trace: FlowTrace, t: float) -> float:
    """The cwnd in effect at time ``t``: the last sample with
    ``sample_t <= t`` (arrival order breaks same-time ties), or 0.0
    before the first sample."""
    value = 0.0
    for _, sample_t, cwnd in trace.cwnd:
        if sample_t > t:
            break
        value = cwnd
    return value


def _cwnd_before_time(trace: FlowTrace, t: float) -> float:
    """The cwnd strictly before time ``t``.  Time-strict on purpose:
    the halving a sender performs while *reacting* to an event is
    emitted at the same simulation instant as the event marker, so an
    order-based "before" would already see the post-reaction value."""
    value = 0.0
    for _, sample_t, cwnd in trace.cwnd:
        if sample_t >= t:
            break
        value = cwnd
    return value


@dataclass(frozen=True)
class _Episode:
    enter_order: int
    enter_t: float
    recover: int
    end_order: int
    end_t: float
    exited: bool  # False = the episode was cut short by a timeout


def _episodes(trace: FlowTrace) -> List[_Episode]:
    """Pair recovery entries with whatever ended them.

    A ``tcp.recovery_exit`` is the normal end; a ``tcp.timeout`` also
    terminates an episode (the base sender abandons recovery without
    emitting an exit marker).  An episode still open when the trace
    ends is dropped — its shape is unknowable.
    """
    ends = sorted(
        [(order, t, True) for order, t in trace.exits]
        + [(order, t, False) for order, t in trace.timeouts]
    )
    episodes: List[_Episode] = []
    cursor = 0
    for enter_order, enter_t, recover in trace.enters:
        while cursor < len(ends) and ends[cursor][0] < enter_order:
            cursor += 1
        if cursor >= len(ends):
            break
        end_order, end_t, exited = ends[cursor]
        cursor += 1
        episodes.append(
            _Episode(
                enter_order=enter_order,
                enter_t=enter_t,
                recover=recover,
                end_order=end_order,
                end_t=end_t,
                exited=exited,
            )
        )
    return episodes


def _collapses(trace: FlowTrace, episodes: Sequence[_Episode]) -> List[Tuple[int, float]]:
    """Tahoe-style loss responses: a cwnd sample at (or below) one
    packet that sits outside every recovery episode and is not the
    reset a timeout performs."""
    inside = [(e.enter_order, e.end_order) for e in episodes]
    timeout_times = {t for _, t in trace.timeouts}
    collapses: List[Tuple[int, float]] = []
    previous = 0.0
    for order, t, cwnd in trace.cwnd:
        was_collapse = (
            cwnd <= 1.0 + 1e-9
            and previous > cwnd + 1e-9
            and t not in timeout_times
            and not any(lo <= order <= hi for lo, hi in inside)
        )
        if was_collapse:
            collapses.append((order, t))
        previous = cwnd
    return collapses


def extract_features(trace: FlowTrace) -> FeatureVector:
    """Reduce one flow's event series to the canonical feature vector.

    Pure and deterministic: list order is bus arrival order, every
    reduction is a fixed-order sum, and no randomness participates.
    """
    rtt = _rtt_estimate(trace)
    episodes = _episodes(trace)
    collapses = _collapses(trace, episodes)

    # Loss responses: every instant the sender reacted to loss.
    responses: List[Tuple[int, float]] = sorted(
        [(e.enter_order, e.enter_t) for e in episodes]
        + [(order, t) for order, t in trace.timeouts]
        + collapses
    )
    n_loss = len(responses)

    # 1/2 — what kind of loss response does this sender make?
    recovery_entry_rate = len(episodes) / n_loss if n_loss else 0.0
    timeout_rate = len(trace.timeouts) / n_loss if n_loss else 0.0

    # 3 — immediate cwnd reaction across *all* loss responses, measured
    # time-strictly around the event (Tahoe ~1/w, halvers ~0.5+, RR 1.0:
    # cwnd untouched until recovery exits).
    drops = []
    for _, t in responses:
        before = _cwnd_before_time(trace, t)
        if before <= 0.0:
            continue
        drops.append(_cwnd_value_at(trace, t + 0.2 * rtt) / before)
    loss_cwnd_drop = _mean(drops)

    # 4 — the same reaction measured at recovery entries only.
    entry_drops = []
    for episode in episodes:
        before = _cwnd_before_time(trace, episode.enter_t)
        if before <= 0.0:
            continue
        entry_drops.append(
            _cwnd_value_at(trace, episode.enter_t + 0.2 * rtt) / before
        )
    entry_cwnd_drop = _mean(entry_drops) if entry_drops else 1.0

    # 5/6/7 — in-recovery dynamics, by arrival order within episodes.
    dupacks_in = 0
    cwnd_moves_in = 0
    new_sends_in = 0
    retx_in = 0
    for episode in episodes:
        lo, hi = episode.enter_order, episode.end_order
        dupacks_in += sum(
            1 for order, _, _, dup in trace.acks if dup and lo < order < hi
        )
        cwnd_moves_in += sum(
            1 for order, _, _ in trace.cwnd if lo < order < hi
        )
        for order, _, _seq, retransmit in trace.sends:
            if not lo < order < hi:
                continue
            if retransmit:
                retx_in += 1
            else:
                new_sends_in += 1
    cwnd_moves_per_dupack = cwnd_moves_in / dupacks_in if dupacks_in else 0.0
    recovery_new_data_per_dupack = (
        new_sends_in / dupacks_in if dupacks_in else 0.0
    )
    recovery_retx_per_episode = retx_in / len(episodes) if episodes else 0.0

    # 8 — partial-ACK-triggered retransmission, the mechanism that
    # defines New-Reno against Reno: the fraction of in-recovery
    # retransmits whose immediately preceding ACK was a *new* ACK.
    # Reno never retransmits on a new ACK (it exits instead), so this
    # is ~0 for Reno and rises with burst depth for the hole-by-hole
    # schemes.
    ack_orders = [order for order, _, _, _ in trace.acks]
    retx_after_new_ack = 0
    retx_with_ack_context = 0
    for episode in episodes:
        lo, hi = episode.enter_order, episode.end_order
        for order, _, _seq, retransmit in trace.sends:
            if not (retransmit and lo < order < hi):
                continue
            i = bisect_right(ack_orders, order) - 1
            if i < 0:
                continue
            retx_with_ack_context += 1
            if not trace.acks[i][3]:
                retx_after_new_ack += 1
    retx_on_new_ack_frac = (
        retx_after_new_ack / retx_with_ack_context
        if retx_with_ack_context
        else 0.0
    )

    # 9 — episode span in RTTs (Reno exits on the first new ACK; the
    # hole-by-hole schemes span the whole burst).
    episode_span_rtts = _mean(
        [(e.end_t - e.enter_t) / rtt for e in episodes]
    )

    # 10 — the exit-burst signature: packets clocked out on the exit
    # ACK and the immediate aftermath.
    bursts = []
    for episode in episodes:
        if not episode.exited:
            continue
        burst = sum(
            1
            for order, t, _, _ in trace.sends
            if order > episode.end_order and t <= episode.end_t + 0.2 * rtt
        )
        bursts.append(float(burst))
    exit_burst = _mean(bursts)

    # 11 — window surrendered across a full episode: cwnd shortly
    # after the exit vs cwnd strictly before the entry.
    exit_ratios = []
    for episode in episodes:
        if not episode.exited:
            continue
        before = _cwnd_before_time(trace, episode.enter_t)
        if before <= 0.0:
            continue
        exit_ratios.append(
            _cwnd_value_at(trace, episode.end_t + 0.2 * rtt) / before
        )
    exit_cwnd_ratio = _mean(exit_ratios)

    # 12 — growth style after a loss response: the fraction of
    # out-of-recovery cwnd increments in the following RTTs that look
    # like slow start's +1-per-ACK (Tahoe rebuilds exponentially;
    # avoidance grows by 1/cwnd; in-episode inflation is excluded).
    inside_episode = [(e.enter_order, e.end_order) for e in episodes]

    def in_recovery(sample_order: int) -> bool:
        return any(lo <= sample_order <= hi for lo, hi in inside_episode)

    slow_start_steps = 0
    growth_steps = 0
    for order, t in responses:
        window_samples = [
            (sample_order, sample_t, cwnd)
            for sample_order, sample_t, cwnd in trace.cwnd
            if sample_order > order
            and t < sample_t <= t + 3.0 * rtt
            and not in_recovery(sample_order)
        ]
        for (_, _, a), (_, _, b) in zip(window_samples, window_samples[1:]):
            delta = b - a
            if delta <= 0.0:
                continue
            growth_steps += 1
            if 0.6 <= delta <= 1.4:
                slow_start_steps += 1
    post_loss_growth = slow_start_steps / growth_steps if growth_steps else 0.0

    # 13 — the paper's discriminator: multiplicative decreases per
    # window of loss responses.  Responses clustered within 3 RTTs
    # share a window; each backoff (a >20% sample-to-sample cwnd drop)
    # is charged to the last window that opened before it.  One backoff
    # per window is the single-halving family (and RR, whose one
    # decrease lands at recovery exit); Reno's episode-per-loss
    # behavior shows up as several.
    window_starts: List[float] = []
    for _, t in responses:
        if not window_starts or t - window_starts[-1] > 3.0 * rtt:
            window_starts.append(t)
    backoff_times = [
        t
        for (_, t, cwnd), (_, _, previous) in zip(
            trace.cwnd[1:], trace.cwnd[:-1]
        )
        if previous > 0.0 and cwnd < 0.8 * previous
    ]
    per_window = [0.0] * len(window_starts)
    for t in backoff_times:
        slot = None
        for i, start in enumerate(window_starts):
            if start <= t:
                slot = i
            else:
                break
        if slot is not None:
            per_window[slot] += 1.0
    backoffs_per_loss_window = _mean(per_window)

    values = (
        recovery_entry_rate,
        timeout_rate,
        loss_cwnd_drop,
        entry_cwnd_drop,
        cwnd_moves_per_dupack,
        recovery_new_data_per_dupack,
        recovery_retx_per_episode,
        retx_on_new_ack_frac,
        episode_span_rtts,
        exit_burst,
        exit_cwnd_ratio,
        post_loss_growth,
        backoffs_per_loss_window,
    )
    return FeatureVector(names=FEATURE_NAMES, values=values)
