"""Trace-based TCP variant identification (the behavior-class oracle).

Following Ahmed et al.'s congestion-control identification work
(PAPERS.md), this package decides *which recovery algorithm produced a
run* from its trace-bus emissions alone — no access to sender
internals, no golden digests.  The pipeline:

* :mod:`repro.ident.features` — a :class:`FlowTraceCollector`
  subscribes to the ``tcp.*`` channels of a live
  :class:`~repro.sim.tracing.TraceBus` and reduces each flow's record
  stream to a deterministic :class:`FeatureVector` of behavioral shape
  descriptors (cwnd-trajectory response to loss, dup-ACK send
  coupling, recovery-exit burst signature, backoffs per loss window —
  the RR discriminator).  The emitting source's variant label is
  stripped before extraction: features describe *dynamics*, never
  names.
* :mod:`repro.ident.classify` — a seeded, dependency-free
  nearest-centroid classifier over z-scored features; picklable, and
  serializable to canonical JSON with a stable content digest.
* :mod:`repro.ident.dataset` — labeled scenario grids (drop bursts and
  seeded random loss over the paper's dumbbell) that generate training
  and held-out feature vectors through :mod:`repro.runner` task specs.
* :mod:`repro.ident.oracle` — the wiring surface: the committed
  reference classifier, :func:`identify_features`, and the
  :class:`IdentityVerdict` the chaos harness and the ``identify`` CLI
  record in run manifests.

The committed artifacts (``src/repro/ident/reference_model.json`` and
``tests/golden/behavior_classes.json``) form the behavior-class
regression gate: a refactor that changes a variant's *behavior* drifts
its feature vectors and fails the gate even when the golden state
digests were legitimately regenerated, while a digest-only refactor
(same dynamics, different pickle bytes) sails through.  See
docs/IDENTIFICATION.md.
"""

from repro.ident.classify import NearestCentroidClassifier
from repro.ident.dataset import (
    HELDOUT_GRID,
    IDENT_VARIANTS,
    TRAINING_GRID,
    IdentScenario,
    collect_cell,
    collect_grid,
    collect_run,
    fit_reference_classifier,
    scenario_by_key,
)
from repro.ident.features import (
    FEATURE_NAMES,
    FeatureVector,
    FlowTrace,
    FlowTraceCollector,
    extract_features,
)
from repro.ident.oracle import (
    IdentityVerdict,
    identify_features,
    identify_trace,
    load_reference_classifier,
    reference_model_path,
)

__all__ = [
    "FEATURE_NAMES",
    "FeatureVector",
    "FlowTrace",
    "FlowTraceCollector",
    "extract_features",
    "NearestCentroidClassifier",
    "IdentScenario",
    "IDENT_VARIANTS",
    "TRAINING_GRID",
    "HELDOUT_GRID",
    "collect_run",
    "collect_cell",
    "collect_grid",
    "scenario_by_key",
    "fit_reference_classifier",
    "IdentityVerdict",
    "identify_features",
    "identify_trace",
    "load_reference_classifier",
    "reference_model_path",
]
