"""A dependency-free nearest-centroid classifier over feature vectors.

Deliberately tiny: with features engineered to separate the five
recovery algorithms (see :mod:`repro.ident.features`), a z-scored
nearest-centroid rule identifies held-out runs perfectly, serializes
to a few hundred bytes of canonical JSON, and is trivially
deterministic — no iterative fitting, no randomness, no external ML
dependency.

Determinism contract:

* :meth:`NearestCentroidClassifier.fit` reduces the training set with
  fixed-order sums over class labels sorted lexicographically, so the
  same labeled vectors (in any order) produce the same model.
* :meth:`to_json` emits sorted-key JSON with full ``repr`` float
  precision; :meth:`digest` hashes that text.  Two fits from identical
  data are byte- and digest-identical, which is what lets the
  committed reference model participate in the runner's code
  fingerprint.
* Instances are plain-attribute objects and pickle cleanly.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.ident.features import FeatureVector

#: Floor for per-feature scale: a feature constant across the training
#: set still contributes (sharply) to distance instead of dividing by
#: zero.
MIN_SCALE = 1e-6


@dataclass(frozen=True)
class Classification:
    """The outcome of classifying one feature vector."""

    label: str
    #: z-space Euclidean distance to the winning centroid.
    distance: float
    #: Relative margin to the runner-up: ``(d2 - d1) / max(d2, eps)``,
    #: in ``[0, 1]``.  Near zero means the call was a coin flip.
    margin: float
    #: label -> z-space distance, every class.
    distances: Dict[str, float]


class NearestCentroidClassifier:
    """Nearest centroid over z-scored features.

    Fit once over labeled feature vectors; classify by Euclidean
    distance in the z-scored space.  The feature order is pinned at fit
    time and incoming vectors are reordered to match, so callers can
    hand over vectors built from any source that names its features.
    """

    def __init__(
        self,
        feature_names: Sequence[str],
        means: Sequence[float],
        scales: Sequence[float],
        centroids: Mapping[str, Sequence[float]],
    ) -> None:
        if len(means) != len(feature_names) or len(scales) != len(feature_names):
            raise ValueError("means/scales must match feature_names length")
        for label, centroid in centroids.items():
            if len(centroid) != len(feature_names):
                raise ValueError(f"centroid {label!r} has wrong arity")
        self.feature_names: Tuple[str, ...] = tuple(feature_names)
        self.means: Tuple[float, ...] = tuple(float(v) for v in means)
        self.scales: Tuple[float, ...] = tuple(float(v) for v in scales)
        self.centroids: Dict[str, Tuple[float, ...]] = {
            label: tuple(float(v) for v in centroids[label])
            for label in sorted(centroids)
        }
        if not self.centroids:
            raise ValueError("classifier needs at least one class centroid")

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(self.centroids)

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls, samples: Sequence[Tuple[str, FeatureVector]]
    ) -> "NearestCentroidClassifier":
        """Fit from ``(label, vector)`` pairs.

        z-scoring parameters come from the pooled training set;
        centroids are per-class means in z-space.  Classes and samples
        are reduced in sorted order so the fit is permutation
        invariant.
        """
        if not samples:
            raise ValueError("cannot fit on an empty training set")
        names = samples[0][1].names
        rows: List[Tuple[str, Tuple[float, ...]]] = []
        for label, vector in samples:
            rows.append((label, vector.reordered(names).values))
        rows.sort()

        n = len(rows)
        dim = len(names)
        means = [0.0] * dim
        for _, values in rows:
            for i, v in enumerate(values):
                means[i] += v
        means = [m / n for m in means]
        variances = [0.0] * dim
        for _, values in rows:
            for i, v in enumerate(values):
                d = v - means[i]
                variances[i] += d * d
        scales = [max(math.sqrt(v / n), MIN_SCALE) for v in variances]

        by_label: Dict[str, List[Tuple[float, ...]]] = {}
        for label, values in rows:
            by_label.setdefault(label, []).append(values)
        centroids: Dict[str, Tuple[float, ...]] = {}
        for label in sorted(by_label):
            members = by_label[label]
            centroid = [0.0] * dim
            for values in members:
                for i, v in enumerate(values):
                    centroid[i] += (v - means[i]) / scales[i]
            centroids[label] = tuple(c / len(members) for c in centroid)
        return cls(names, means, scales, centroids)

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def _zscore(self, vector: FeatureVector) -> Tuple[float, ...]:
        values = vector.reordered(self.feature_names).values
        return tuple(
            (v - m) / s for v, m, s in zip(values, self.means, self.scales)
        )

    def classify(self, vector: FeatureVector) -> Classification:
        z = self._zscore(vector)
        distances: Dict[str, float] = {}
        for label, centroid in self.centroids.items():
            acc = 0.0
            for a, b in zip(z, centroid):
                d = a - b
                acc += d * d
            distances[label] = math.sqrt(acc)
        # Ties break toward the lexicographically first label: the
        # centroid dict is built sorted and `<` is strict.
        best_label = None
        best = second = math.inf
        for label, distance in distances.items():
            if distance < best:
                second = best
                best, best_label = distance, label
            elif distance < second:
                second = distance
        margin = 0.0
        if math.isfinite(second) and second > 0.0:
            margin = (second - best) / second
        assert best_label is not None
        return Classification(
            label=best_label, distance=best, margin=margin, distances=distances
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Canonical JSON (sorted keys, full float repr, 2-space
        indent so the committed artifact diffs readably)."""
        payload = {
            "format": 1,
            "kind": "nearest-centroid",
            "feature_names": list(self.feature_names),
            "means": list(self.means),
            "scales": list(self.scales),
            "centroids": {k: list(v) for k, v in self.centroids.items()},
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "NearestCentroidClassifier":
        payload = json.loads(text)
        if payload.get("kind") != "nearest-centroid":
            raise ValueError(f"unknown classifier kind: {payload.get('kind')!r}")
        if payload.get("format") != 1:
            raise ValueError(f"unknown classifier format: {payload.get('format')!r}")
        return cls(
            feature_names=payload["feature_names"],
            means=payload["means"],
            scales=payload["scales"],
            centroids=payload["centroids"],
        )

    def digest(self) -> str:
        """Content digest of the canonical JSON form."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NearestCentroidClassifier):
            return NotImplemented
        return self.to_json() == other.to_json()

    def __repr__(self) -> str:
        return (
            f"NearestCentroidClassifier(labels={list(self.centroids)}, "
            f"dim={len(self.feature_names)})"
        )
