"""Labeled scenario grids for fitting and validating the identifier.

Every cell is the golden dumbbell world (one flow, 25-packet buffer,
the paper's Figure-5 configuration) under a specific loss process:
deterministic in-window drop bursts of varying depth and position, and
seeded uniform random loss at varying rates.  Crossing the cells with
the five recovery variants yields the labeled feature vectors the
reference classifier is fitted on.

Two disjoint grids:

* :data:`TRAINING_GRID` — fits the committed reference model
  (``scripts/update_ident.py`` regenerates it).
* :data:`HELDOUT_GRID` — different burst positions/depths, different
  loss rates, different seeds.  Never touches the fit; the acceptance
  bar is perfect (5/5 variants, every cell) identification here, and
  the held-out vectors themselves are committed as the behavior-class
  golden file (``tests/golden/behavior_classes.json``).

:func:`collect_cell` is a module-level ``(variant, key)`` callable so
sweeps can fan cells out through :mod:`repro.runner` task specs and
stay bit-identical serial vs parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import TcpConfig
from repro.ident.classify import NearestCentroidClassifier
from repro.ident.features import FeatureVector, FlowTraceCollector
from repro.net.loss import (
    DeterministicLoss,
    GilbertElliott,
    LossModule,
    UniformLoss,
)
from repro.net.packet import set_uid_state
from repro.net.topology import DumbbellParams
from repro.sim.rng import RngStream

#: The five recovery algorithms the identifier tells apart — same set,
#: same order as the golden digests.
IDENT_VARIANTS: Tuple[str, ...] = ("tahoe", "reno", "newreno", "sack", "rr")

#: One flow, enough backlog to ride through several loss events.
TRANSFER_PACKETS = 400
RUN_UNTIL = 25.0


@dataclass(frozen=True)
class IdentScenario:
    """One labeled loss cell over the golden dumbbell.

    ``kind`` is ``"burst"`` (a :class:`DeterministicLoss` run of
    ``n_drops`` consecutive sequence numbers starting at
    ``first_drop``; pass several ``first_drop`` values via ``bursts``),
    ``"gilbert"`` (seeded two-state Gilbert-Elliott burst loss — the
    stochastic cells, because only multi-drop loss windows exercise
    the mechanisms that distinguish Reno from New-Reno), or
    ``"uniform"`` (i.i.d. loss at ``rate``; isolated drops, so Reno
    and New-Reno are genuinely indistinguishable here — kept out of
    the grids, available for inconclusiveness tests).
    """

    key: str
    kind: str  # "burst" | "gilbert" | "uniform"
    bursts: Tuple[Tuple[int, int], ...] = ()  # (first_drop_seq, n_drops)
    rate: float = 0.0
    seed: int = 0
    #: Gilbert-Elliott geometry: good->bad and bad->good transition
    #: probabilities, and the bad-state loss probability.
    p_good_to_bad: float = 0.02
    p_bad_to_good: float = 0.4
    p_bad: float = 0.7

    def loss_module(self) -> LossModule:
        if self.kind == "burst":
            drops = [
                (1, first + i)
                for first, n_drops in self.bursts
                for i in range(n_drops)
            ]
            return DeterministicLoss(drops)
        if self.kind == "gilbert":
            return GilbertElliott(
                RngStream(self.seed, f"ident/{self.key}"),
                p_good_to_bad=self.p_good_to_bad,
                p_bad_to_good=self.p_bad_to_good,
                p_bad=self.p_bad,
            )
        if self.kind == "uniform":
            return UniformLoss(
                self.rate, RngStream(self.seed, f"ident/{self.key}")
            )
        raise ValueError(f"unknown scenario kind: {self.kind!r}")


def _burst(key: str, *bursts: Tuple[int, int]) -> IdentScenario:
    return IdentScenario(key=key, kind="burst", bursts=tuple(bursts))


def _uniform(key: str, rate: float, seed: int) -> IdentScenario:
    return IdentScenario(key=key, kind="uniform", rate=rate, seed=seed)


def _gilbert(key: str, seed: int) -> IdentScenario:
    return IdentScenario(key=key, kind="gilbert", seed=seed)


#: Fit cells: burst depths 2-6 at several window positions, plus
#: seeded Gilbert-Elliott burst loss.  Deliberately no single-isolated-
#: drop-only cells: those produce identical Reno and New-Reno behavior
#: (nothing for a *behavior* classifier to learn from).
TRAINING_GRID: Tuple[IdentScenario, ...] = (
    _burst("burst-2@100", (100, 2)),
    _burst("burst-3@100", (100, 3)),
    _burst("burst-4@100", (100, 4)),
    _burst("burst-6@100", (100, 6)),
    _burst("burst-2@60+2@180", (60, 2), (180, 2)),
    _burst("burst-3@60+2@200", (60, 3), (200, 2)),
    _gilbert("gilbert-s7", 7),
    _gilbert("gilbert-s11", 11),
    _gilbert("gilbert-s13", 13),
)

#: Validation cells: positions, depths and seeds the fit never saw.
HELDOUT_GRID: Tuple[IdentScenario, ...] = (
    _burst("burst-2@140", (140, 2)),
    _burst("burst-5@90", (90, 5)),
    _burst("burst-3@70+2@160", (70, 3), (160, 2)),
    _gilbert("gilbert-s23", 23),
    _gilbert("gilbert-s29", 29),
)

_ALL_SCENARIOS: Dict[str, IdentScenario] = {
    scenario.key: scenario for scenario in TRAINING_GRID + HELDOUT_GRID
}
if len(_ALL_SCENARIOS) != len(TRAINING_GRID) + len(HELDOUT_GRID):
    raise AssertionError("ident scenario keys must be unique across grids")


def scenario_by_key(key: str) -> IdentScenario:
    try:
        return _ALL_SCENARIOS[key]
    except KeyError:
        raise KeyError(
            f"unknown ident scenario {key!r}; known: {sorted(_ALL_SCENARIOS)}"
        ) from None


def collect_run(
    variant: str,
    scenario: IdentScenario,
    run_until: float = RUN_UNTIL,
) -> FeatureVector:
    """Run one (variant, cell) and extract the flow's feature vector.

    Mirrors the golden scenario discipline: the global packet-uid
    counter is reset first so the run is reproducible no matter what
    the process simulated before.
    """
    # Lazy import for the same reason golden.py does it: keep
    # repro.ident importable from repro.runner worker processes without
    # dragging the harness stack in at module import.
    from repro.experiments.common import FlowSpec, build_dumbbell_scenario

    set_uid_state(1)
    scenario_result = build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=TRANSFER_PACKETS)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
        default_config=TcpConfig(receiver_window=64, initial_ssthresh=20.0),
        forward_loss=scenario.loss_module(),
    )
    collector = FlowTraceCollector().install(scenario_result.dumbbell.net.trace)
    try:
        scenario_result.sim.run(until=run_until)
    finally:
        collector.uninstall()
    return collector.features(flow_id=1)


def collect_cell(variant: str, key: str) -> Dict[str, object]:
    """Runner-facing cell: plain-JSON in, plain-JSON out.

    Registered in task specs as ``repro.ident.dataset:collect_cell`` —
    the dict return (not a FeatureVector) keeps cached results stable
    against dataclass evolution.
    """
    vector = collect_run(variant, scenario_by_key(key))
    return {
        "variant": variant,
        "key": key,
        "features": vector.as_dict(),
    }


def _vector_from_cell(cell: Dict[str, object]) -> FeatureVector:
    features = cell["features"]
    assert isinstance(features, dict)
    names = tuple(sorted(features))
    return FeatureVector(
        names=names, values=tuple(float(features[n]) for n in names)
    )


def collect_grid(
    grid: Sequence[IdentScenario],
    variants: Sequence[str] = IDENT_VARIANTS,
    runner: Optional["SweepRunner"] = None,  # noqa: F821 - lazy type
) -> List[Tuple[str, str, FeatureVector]]:
    """Collect ``(variant, key, vector)`` for a full grid cross.

    With a :class:`~repro.runner.SweepRunner`, cells fan out as
    content-addressed task specs (cached, parallel, bit-identical to
    serial); without one they run inline in the same fixed order.
    """
    cells = [
        (variant, scenario.key) for variant in variants for scenario in grid
    ]
    if runner is None:
        results = [collect_cell(variant, key) for variant, key in cells]
    else:
        from repro.runner import TaskSpec

        specs = [
            TaskSpec(
                fn="repro.ident.dataset:collect_cell",
                args=(variant, key),
                label=f"ident/{variant}/{key}",
            )
            for variant, key in cells
        ]
        results = runner.map(specs)
    return [
        (variant, key, _vector_from_cell(cell))
        for (variant, key), cell in zip(cells, results)
    ]


def fit_reference_classifier(
    runner: Optional["SweepRunner"] = None,  # noqa: F821 - lazy type
) -> NearestCentroidClassifier:
    """Fit the reference model over the full training cross."""
    samples = [
        (variant, vector)
        for variant, _key, vector in collect_grid(TRAINING_GRID, runner=runner)
    ]
    return NearestCentroidClassifier.fit(samples)
