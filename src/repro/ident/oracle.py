"""The identification oracle: the committed reference model + verdicts.

The fitted reference classifier ships *inside the package*
(``src/repro/ident/reference_model.json``) so every consumer — the
``identify`` CLI harness, the chaos-campaign identity check, the
golden behavior-class test — loads the exact same bytes without a
fitting pass.  ``scripts/update_ident.py`` regenerates the file after
an intentional behavior change, and the runner's code fingerprint
hashes it so cached sweep results can never straddle two models.

A :class:`IdentityVerdict` is the manifest-facing record, mirroring
manyflow's ``OracleVerdict``: flat, JSON-ready, and explicit about
confidence — a run with too few loss events or a coin-flip margin is
reported as inconclusive rather than guessed at.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.ident.classify import Classification, NearestCentroidClassifier
from repro.ident.features import FeatureVector, FlowTrace, extract_features

#: Below this relative margin the nearest-centroid call is treated as
#: inconclusive (the run sits between two behavior classes).
MIN_MARGIN = 0.05

#: A flow must have reacted to loss at least this many times for its
#: features to mean anything; a clean run matches every variant.
MIN_LOSS_RESPONSES = 1


def reference_model_path() -> Path:
    """Location of the committed reference classifier."""
    return Path(__file__).resolve().parent / "reference_model.json"


_CACHED: Optional[NearestCentroidClassifier] = None


def load_reference_classifier() -> NearestCentroidClassifier:
    """Load (and cache) the committed reference model."""
    global _CACHED
    if _CACHED is None:
        path = reference_model_path()
        _CACHED = NearestCentroidClassifier.from_json(
            path.read_text(encoding="utf-8")
        )
    return _CACHED


@dataclass(frozen=True)
class IdentityVerdict:
    """One flow's identification outcome.

    ``ok`` is None when no declared variant was supplied (pure
    identification) or when the verdict is inconclusive; otherwise it
    says whether the identified class matches the declaration.
    """

    identified: str
    declared: Optional[str]
    distance: float
    margin: float
    conclusive: bool
    ok: Optional[bool]

    @property
    def diverged(self) -> bool:
        """True when a conclusive identification contradicts the
        declared variant — the chaos-campaign flag condition."""
        return self.ok is False

    def as_dict(self) -> Dict[str, object]:
        """Flat manifest payload (see RunManifest.note_identity)."""
        return {
            "identified": self.identified,
            "declared": self.declared,
            "distance": self.distance,
            "margin": self.margin,
            "conclusive": self.conclusive,
            "ok": self.ok,
        }

    def describe(self) -> str:
        tag = "?" if self.ok is None else ("ok" if self.ok else "DIVERGED")
        declared = self.declared or "<undeclared>"
        return (
            f"declared={declared} identified={self.identified} "
            f"margin={self.margin:.3f} [{tag}]"
        )


def _verdict_from_classification(
    classification: Classification,
    declared: Optional[str],
    conclusive: bool,
) -> IdentityVerdict:
    ok: Optional[bool] = None
    if declared is not None and conclusive:
        ok = classification.label == declared
    return IdentityVerdict(
        identified=classification.label,
        declared=declared,
        distance=classification.distance,
        margin=classification.margin,
        conclusive=conclusive,
        ok=ok,
    )


def identify_features(
    vector: FeatureVector,
    declared: Optional[str] = None,
    classifier: Optional[NearestCentroidClassifier] = None,
    min_margin: float = MIN_MARGIN,
) -> IdentityVerdict:
    """Classify one feature vector against the reference model."""
    model = classifier if classifier is not None else load_reference_classifier()
    classification = model.classify(vector)
    return _verdict_from_classification(
        classification, declared, conclusive=classification.margin >= min_margin
    )


def identify_trace(
    trace: FlowTrace,
    declared: Optional[str] = None,
    classifier: Optional[NearestCentroidClassifier] = None,
    min_margin: float = MIN_MARGIN,
) -> IdentityVerdict:
    """Classify a raw flow trace, guarding on evidence volume.

    A flow that never reacted to loss (no recovery entries, no
    timeouts, no cwnd collapses) carries no identifying signal; its
    verdict is reported inconclusive regardless of margin.
    """
    vector = extract_features(trace)
    loss_responses = (
        vector["recovery_entry_rate"] + vector["timeout_rate"]
    )
    has_evidence = (
        len(trace.enters) + len(trace.timeouts) >= MIN_LOSS_RESPONSES
        or loss_responses > 0.0
        or vector["backoffs_per_loss_window"] > 0.0
    )
    model = classifier if classifier is not None else load_reference_classifier()
    classification = model.classify(vector)
    conclusive = has_evidence and classification.margin >= min_margin
    return _verdict_from_classification(classification, declared, conclusive)
