"""TCP sender base machinery.

:class:`TcpSender` implements everything the recovery variants share:

* slow start and congestion avoidance (cwnd in packets, ns-2 style);
* duplicate-ACK counting and the fast-retransmit trigger;
* RTO management: one retransmission timer, RFC 6298 estimation with
  Karn's rule (one sample in flight, abandoned if the timed packet is
  retransmitted), exponential back-off, go-back-N after a timeout;
* send-window accounting (``snd_una``/``snd_nxt``/``maxseq``), receiver
  window and application data limits;
* observer/trace hooks for metrics.

Recovery behaviour is delegated to subclasses through a small set of
hook methods (``_fast_retransmit``, ``_recovery_dupack``,
``_recovery_new_ack``, ``_on_timeout_reset``); the base class itself is
a valid TCP sender only in the loss-free path.

Sequence numbers are packet-based and ``maxseq`` is *one past* the
highest sequence sent, so ``recover = maxseq`` and "the recovery phase
ends when snd.una advances to, or beyond, this threshold" (Section 2.2)
translates to ``ackno >= recover``.
"""

from __future__ import annotations

from typing import Optional

from repro.config import TcpConfig
from repro.errors import ProtocolError
from repro.net.node import Agent
from repro.net.packet import Packet, data_packet
from repro.sim.engine import Simulator
from repro.sim.timers import Timer
from repro.sim.tracing import NULL_CHANNEL, TraceBus
from repro.tcp.rtt import RtoEstimator


class SenderObserver:
    """No-op observer; metrics classes override the hooks they need.

    Every hook receives the simulation time first.  ``sender`` is the
    emitting :class:`TcpSender`.
    """

    def on_start(self, t: float, sender: "TcpSender") -> None:
        pass

    def on_send(self, t: float, sender: "TcpSender", seqno: int, retransmit: bool) -> None:
        pass

    def on_ack(self, t: float, sender: "TcpSender", ackno: int, duplicate: bool) -> None:
        pass

    def on_cwnd(self, t: float, sender: "TcpSender", cwnd: float) -> None:
        pass

    def on_timeout(self, t: float, sender: "TcpSender") -> None:
        pass

    def on_recovery_enter(self, t: float, sender: "TcpSender") -> None:
        pass

    def on_recovery_exit(self, t: float, sender: "TcpSender") -> None:
        pass

    def on_complete(self, t: float, sender: "TcpSender") -> None:
        pass


class TcpSender(Agent):
    """Base TCP sender (slow start + congestion avoidance + RTO).

    Parameters
    ----------
    sim:
        Event engine.
    flow_id:
        Connection identifier shared with the receiver.
    dst:
        Destination host name.
    config:
        :class:`TcpConfig`; defaults match the paper.
    observer:
        Optional :class:`SenderObserver` for metrics.
    trace:
        Optional trace bus (publishes ``tcp.*`` records).
    """

    variant = "base"

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        dst: str,
        config: Optional[TcpConfig] = None,
        observer: Optional[SenderObserver] = None,
        trace: Optional[TraceBus] = None,
    ):
        super().__init__(flow_id)
        self.sim = sim
        self.config = config or TcpConfig()
        self.config.validate()
        self.dst = dst
        self.observer = observer or SenderObserver()
        self.trace = trace

        # --- window state (packet units) ---
        self.cwnd: float = self.config.initial_cwnd
        self.ssthresh: float = self.config.initial_ssthresh
        self.snd_una: int = 0       # lowest unacknowledged packet
        self.snd_nxt: int = 0       # next *new* packet to send
        self.maxseq: int = 0        # one past the highest packet ever sent
        self.dupacks: int = 0
        self.in_recovery: bool = False
        self.recover: int = 0       # recovery exit threshold (ackno units)

        # --- application interface ---
        self._limit: Optional[int] = None  # total packets to send; None = unbounded
        self.started = False
        self.completed = False
        self.complete_time: Optional[float] = None
        # Called with the completion time when a bounded transfer is
        # fully acknowledged (used by app-layer sources).
        self.completion_callbacks: list = []

        # --- RTO machinery ---
        self.rto = RtoEstimator(self.config)
        self._timer = Timer(sim, self._on_timeout, self.config.timer_granularity)
        self._rtt_seq: Optional[int] = None   # packet being timed (Karn)
        self._rtt_sent_at: float = 0.0

        # --- counters ---
        self.packets_sent = 0
        self.retransmits = 0
        self.timeouts = 0
        self._last_send_time: Optional[float] = None
        self.idle_restarts = 0

        # --- ECN (extension; off unless config.ecn_enabled) ---
        # React to echoed marks at most once per window: ignore echoes
        # until snd_una passes the marker set at the last reaction.
        self._ecn_react_marker = 0
        self.ecn_reactions = 0
        # RFC 3168: do not also grow cwnd on the ACK carrying the echo.
        self._suppress_growth = False

        # --- derived tracing state (never pickled; see __getstate__) ---
        self._bind_trace_channels()

    # ------------------------------------------------------------------
    # tracing fast path
    # ------------------------------------------------------------------
    #: Attributes derived from ``trace``; excluded from pickles/digests
    #: and lazily rebuilt after restore.
    _TRACE_DERIVED = ("_ch_send", "_ch_ack", "_ch_cwnd", "_trace_src")

    def _bind_trace_channels(self) -> "None":
        """(Re)derive the cached per-category channels and source label.

        The per-packet emit sites (tcp.send / tcp.ack / tcp.cwnd) guard
        on ``channel.subs`` so an unsubscribed category costs one
        attribute test and allocates nothing."""
        trace = self.trace
        if trace is None:
            self._ch_send = self._ch_ack = self._ch_cwnd = NULL_CHANNEL
        else:
            self._ch_send = trace.channel("tcp.send")
            self._ch_ack = trace.channel("tcp.ack")
            self._ch_cwnd = trace.channel("tcp.cwnd")
        self._trace_src = f"{self.variant}/f{self.flow_id}"

    def __getstate__(self):
        """Pickle/digest state: the live ``__dict__`` minus derived
        trace caches, so checkpoints (and golden digests) are identical
        to a sender that never cached anything."""
        state = self.__dict__.copy()
        for key in self._TRACE_DERIVED:
            state.pop(key, None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        # The trace bus may itself still be mid-unpickle (cycles), so
        # channels are rebound lazily on the first emit.
        self._ch_send = self._ch_ack = self._ch_cwnd = None
        self._trace_src = None

    # ------------------------------------------------------------------
    # application interface
    # ------------------------------------------------------------------
    def set_timer_granularity(self, granularity: float) -> None:
        """Change the retransmission-timer tick at runtime (fault
        injection models per-host clock-granularity skew this way)."""
        self._timer.set_granularity(granularity)

    @property
    def timer_granularity(self) -> float:
        """The retransmission timer's current tick size (seconds)."""
        return self._timer.granularity

    def set_data_limit(self, packets: Optional[int]) -> None:
        """Bound the transfer to ``packets`` total (None = unbounded)."""
        if packets is not None and packets < 1:
            raise ProtocolError("data limit must be >= 1 packet")
        self._limit = packets

    @property
    def data_limit(self) -> Optional[int]:
        return self._limit

    def start(self) -> None:
        """Begin transmitting (slow start)."""
        if self.started:
            return
        self.started = True
        self.observer.on_start(self.sim.now, self)
        self._emit("tcp.start")
        self.send_available()

    # ------------------------------------------------------------------
    # window accounting
    # ------------------------------------------------------------------
    def flight(self) -> int:
        """Outstanding packets *at the sender side* (snd_nxt - snd_una).

        As Section 2.1 stresses, during recovery this over-estimates the
        packets actually in the path; RR replaces it with ``actnum``.
        """
        return self.snd_nxt - self.snd_una

    def send_window(self) -> int:
        """min(cwnd, receiver window), integral packets."""
        return min(int(self.cwnd), self.config.receiver_window)

    def data_available(self) -> bool:
        """True while the application has unsent data."""
        return self._limit is None or self.snd_nxt < self._limit

    def can_send_new(self) -> bool:
        return self.data_available() and self.flight() < self.send_window()

    def send_available(self, max_packets: Optional[int] = None) -> int:
        """Send as much new data as the window (and ``max_packets``)
        permits.  Returns the number of packets sent."""
        self._maybe_slow_start_restart()
        sent = 0
        while self.can_send_new():
            if max_packets is not None and sent >= max_packets:
                break
            self._send_new()
            sent += 1
        return sent

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def _maybe_slow_start_restart(self) -> None:
        """RFC 2581 §4.1 (optional): an idle period longer than one RTO
        invalidates the old cwnd — restart from the initial window."""
        if not self.config.slow_start_restart:
            return
        if (
            self._last_send_time is not None
            and self.flight() == 0
            and self.sim.now - self._last_send_time > self.rto.current()
            and self.cwnd > self.config.initial_cwnd
        ):
            self.cwnd = self.config.initial_cwnd
            self.idle_restarts += 1
            self._note_cwnd()

    def _send_new(self) -> None:
        """Transmit the packet at ``snd_nxt`` (new data, or the next
        go-back-N resend after a timeout when snd_nxt < maxseq)."""
        seqno = self.snd_nxt
        retransmit = seqno < self.maxseq
        self.snd_nxt += 1
        self.maxseq = max(self.maxseq, self.snd_nxt)
        self._transmit(seqno, retransmit)

    def _retransmit(self, seqno: int) -> None:
        """Retransmit ``seqno`` without touching snd_nxt."""
        if not self.snd_una <= seqno < self.maxseq:
            raise ProtocolError(
                f"retransmit of {seqno} outside [{self.snd_una}, {self.maxseq})"
            )
        self._transmit(seqno, retransmit=True)

    def _transmit(self, seqno: int, retransmit: bool) -> None:
        packet = data_packet(
            self.flow_id,
            self.local_name,
            self.dst,
            seqno,
            size=self.config.mss_bytes,
            is_retransmit=retransmit,
        )
        packet.ecn_capable = self.config.ecn_enabled
        now = self.sim.now
        packet.sent_at = now
        if retransmit:
            self.retransmits += 1
            if self._rtt_seq is not None and seqno == self._rtt_seq:
                self._rtt_seq = None  # Karn's rule: abandon the sample
        elif self._rtt_seq is None:
            self._rtt_seq = seqno
            self._rtt_sent_at = now
        self.packets_sent += 1
        self._last_send_time = now
        if not self._timer.pending:
            self._timer.start(self.rto.current())
        self.observer.on_send(now, self, seqno, retransmit)
        ch = self._ch_send
        if ch is None:
            self._bind_trace_channels()
            ch = self._ch_send
        if ch.subs:
            ch.emit(
                now,
                self._trace_src,
                seqno=seqno,
                retransmit=retransmit,
                snd_una=self.snd_una,
                snd_nxt=self.snd_nxt,
                maxseq=self.maxseq,
            )
        self.send(packet)

    # ------------------------------------------------------------------
    # ACK dispatch
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        if not packet.is_ack or self.completed:
            return
        if packet.ecn_echo and self.config.ecn_enabled:
            self._ecn_reaction()
            self._suppress_growth = True
        ackno = packet.ackno
        ch = self._ch_ack
        if ch is None:
            self._bind_trace_channels()
            ch = self._ch_ack
        if ackno > self.snd_una:
            self.observer.on_ack(self.sim.now, self, ackno, duplicate=False)
            if ch.subs:
                ch.emit(
                    self.sim.now,
                    self._trace_src,
                    ackno=ackno,
                    duplicate=False,
                    snd_una=self.snd_una,
                    snd_nxt=self.snd_nxt,
                    maxseq=self.maxseq,
                )
            self._process_new_ack(packet)
            self._check_complete()
        elif ackno == self.snd_una and self.flight() > 0:
            self.observer.on_ack(self.sim.now, self, ackno, duplicate=True)
            if ch.subs:
                ch.emit(
                    self.sim.now,
                    self._trace_src,
                    ackno=ackno,
                    duplicate=True,
                    snd_una=self.snd_una,
                    snd_nxt=self.snd_nxt,
                    maxseq=self.maxseq,
                )
            self._process_dupack(packet)
        # older ACKs are stale: ignored
        self._suppress_growth = False

    def _check_complete(self) -> None:
        if self._limit is not None and self.snd_una >= self._limit and not self.completed:
            self.completed = True
            self.complete_time = self.sim.now
            self._timer.stop()
            self.observer.on_complete(self.sim.now, self)
            self._emit("tcp.complete")
            for callback in self.completion_callbacks:
                callback(self.sim.now)

    # ------------------------------------------------------------------
    # common ACK helpers (for subclasses)
    # ------------------------------------------------------------------
    def _ack_common(self, ackno: int) -> None:
        """Advance snd_una, take the RTT sample, manage the timer and
        reset the dup-ACK counter.  Every new-ACK path calls this."""
        if self._rtt_seq is not None and ackno > self._rtt_seq:
            self.rto.on_sample(self.sim.now - self._rtt_sent_at)
            self._rtt_seq = None
        self.snd_una = ackno
        self.snd_nxt = max(self.snd_nxt, ackno)
        self.dupacks = 0
        if self.flight() > 0:
            self._timer.restart(self.rto.current())
        else:
            self._timer.stop()

    def _open_cwnd(self) -> None:
        """Grow cwnd per ACK: slow start below ssthresh, else AIMD."""
        if self._suppress_growth:
            self._suppress_growth = False
            return
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
        else:
            self.cwnd += 1.0 / self.cwnd
        self._note_cwnd()

    def _note_cwnd(self) -> None:
        self.observer.on_cwnd(self.sim.now, self, self.cwnd)
        ch = self._ch_cwnd
        if ch is None:
            self._bind_trace_channels()
            ch = self._ch_cwnd
        if ch.subs:
            ch.emit(self.sim.now, self._trace_src, cwnd=self.cwnd)

    def _halved_ssthresh(self) -> float:
        """The standard multiplicative decrease: half the flight size,
        floored at 2 packets."""
        return max(self.flight() / 2.0, 2.0)

    # ------------------------------------------------------------------
    # default new-ACK / dup-ACK processing
    # ------------------------------------------------------------------
    def _process_new_ack(self, packet: Packet) -> None:
        if self.in_recovery:
            self._recovery_new_ack(packet)
            return
        self._ack_common(packet.ackno)
        self._open_cwnd()
        self.send_available()

    def _process_dupack(self, packet: Packet) -> None:
        if self.in_recovery:
            self._recovery_dupack(packet)
            return
        self.dupacks += 1
        if self.dupacks == self.config.dupack_threshold:
            self._fast_retransmit(packet)

    # ------------------------------------------------------------------
    # ECN reaction (extension)
    # ------------------------------------------------------------------
    def _ecn_reaction(self) -> None:
        """Echoed congestion mark: halve the window, loss-free, at most
        once per window of data (RFC 3168 semantics, simplified)."""
        if self.in_recovery or self.snd_una < self._ecn_react_marker:
            return
        self.ssthresh = self._halved_ssthresh()
        self.cwnd = max(self.ssthresh, 1.0)
        self._ecn_react_marker = self.snd_nxt
        self.ecn_reactions += 1
        self._note_cwnd()
        self._emit("tcp.ecn_reaction")

    # ------------------------------------------------------------------
    # variant hooks
    # ------------------------------------------------------------------
    def _fast_retransmit(self, packet: Packet) -> None:
        """Third duplicate ACK outside recovery.  Variants implement."""
        raise NotImplementedError("recovery variants must implement _fast_retransmit")

    def _recovery_dupack(self, packet: Packet) -> None:
        """Duplicate ACK while in recovery.  Variants implement."""
        raise NotImplementedError

    def _recovery_new_ack(self, packet: Packet) -> None:
        """New (possibly partial) ACK while in recovery."""
        raise NotImplementedError

    def _on_timeout_reset(self) -> None:
        """Variant-specific cleanup when the RTO fires (clear recovery
        state, scoreboards...).  Default just leaves recovery."""
        self.in_recovery = False

    def _enter_recovery_common(self) -> None:
        self.in_recovery = True
        self.observer.on_recovery_enter(self.sim.now, self)
        self._emit("tcp.recovery_enter", recover=self.recover)

    def _exit_recovery_common(self) -> None:
        self.in_recovery = False
        self.observer.on_recovery_exit(self.sim.now, self)
        self._emit("tcp.recovery_exit")

    # ------------------------------------------------------------------
    # timeout
    # ------------------------------------------------------------------
    def _on_timeout(self) -> None:
        if self.completed:
            return
        if self.flight() <= 0:
            return  # nothing outstanding; spurious
        self.timeouts += 1
        self.observer.on_timeout(self.sim.now, self)
        self._emit(
            "tcp.timeout",
            snd_una=self.snd_una,
            snd_nxt=self.snd_nxt,
            maxseq=self.maxseq,
        )
        was_in_recovery = self.in_recovery
        self.ssthresh = self._halved_ssthresh()
        self.cwnd = 1.0
        self.dupacks = 0
        self._on_timeout_reset()
        if was_in_recovery and not self.in_recovery:
            self.observer.on_recovery_exit(self.sim.now, self)
        # Go-back-N: resume sending from the first unacknowledged packet.
        self.snd_nxt = self.snd_una
        self._rtt_seq = None
        self.rto.backoff()
        self._timer.start(self.rto.current())
        self._note_cwnd()
        self.send_available()

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def _emit(self, category: str, **fields) -> None:
        if self.trace is not None:
            src = self._trace_src
            if src is None:
                self._bind_trace_channels()
                src = self._trace_src
            self.trace.emit(self.sim.now, category, src, **fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} f{self.flow_id} una={self.snd_una} "
            f"nxt={self.snd_nxt} cwnd={self.cwnd:.2f} rec={self.in_recovery}>"
        )
