"""TCP Tahoe.

Fast retransmit exists but there is no fast recovery: three duplicate
ACKs retransmit the lost packet and then the sender behaves exactly as
after a timeout — ``cwnd`` collapses to one packet and slow start
rebuilds the window, resending from ``snd_una`` (go-back-N).  The
paper's Figure 5 shows Tahoe beating New-Reno under heavy bursty loss
precisely because this blunt reaction resends everything instead of
stalling.
"""

from __future__ import annotations

from repro.net.packet import Packet
from repro.tcp.base import TcpSender


class TahoeSender(TcpSender):
    """Tahoe: fast retransmit + slow start restart."""

    variant = "tahoe"

    def _fast_retransmit(self, packet: Packet) -> None:
        self.ssthresh = self._halved_ssthresh()
        self.cwnd = 1.0
        self._note_cwnd()
        # Go-back-N from the hole; the retransmission below is the
        # first packet of the new slow start.
        self.snd_nxt = self.snd_una
        self._rtt_seq = None
        self._timer.restart(self.rto.current())
        self.send_available()

    def _process_dupack(self, packet: Packet) -> None:
        self.dupacks += 1
        # Trigger only on exactly the threshold; later duplicates of the
        # same window are ignored (Tahoe has no recovery phase).
        if self.dupacks == self.config.dupack_threshold:
            self._fast_retransmit(packet)

    # Tahoe never sets in_recovery, so these hooks cannot be reached;
    # they exist to satisfy the interface.
    def _recovery_dupack(self, packet: Packet) -> None:  # pragma: no cover
        raise AssertionError("Tahoe has no recovery phase")

    def _recovery_new_ack(self, packet: Packet) -> None:  # pragma: no cover
        raise AssertionError("Tahoe has no recovery phase")
