"""SACK scoreboard: the sender-side record of which packets the
receiver holds, plus the RFC 3517 loss/pipe computations.

Packet-unit sequence numbers keep this simple: the scoreboard is a set
of SACKed packet numbers at or above ``snd_una``, plus the set of
packets retransmitted during the current recovery episode (``HighRxt``
in RFC terms).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.net.packet import SackBlock


class Scoreboard:
    """Tracks SACKed and retransmitted packets for one connection."""

    def __init__(self, dupack_threshold: int = 3):
        self.dupack_threshold = dupack_threshold
        self._sacked: Set[int] = set()
        self._retransmitted: Set[int] = set()

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update(self, ackno: int, blocks: Iterable[SackBlock]) -> None:
        """Fold in one ACK: drop everything cumulatively acked, add the
        SACKed ranges."""
        for block in blocks:
            self._sacked.update(range(block.start, block.end))
        self._sacked = {s for s in self._sacked if s >= ackno}
        self._retransmitted = {s for s in self._retransmitted if s >= ackno}

    def mark_retransmitted(self, seqno: int) -> None:
        self._retransmitted.add(seqno)

    def clear(self) -> None:
        """Discard all SACK state (RFC 2018 requires this on RTO)."""
        self._sacked.clear()
        self._retransmitted.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_sacked(self, seqno: int) -> bool:
        return seqno in self._sacked

    def was_retransmitted(self, seqno: int) -> bool:
        return seqno in self._retransmitted

    def sacked_count(self) -> int:
        return len(self._sacked)

    def sacked_above(self, seqno: int) -> int:
        """Number of SACKed packets with sequence > ``seqno``."""
        return sum(1 for s in self._sacked if s > seqno)

    def is_lost(self, seqno: int) -> bool:
        """RFC 3517 IsLost: at least DupThresh SACKed packets above it."""
        if seqno in self._sacked:
            return False
        return self.sacked_above(seqno) >= self.dupack_threshold

    def pipe(self, snd_una: int, snd_nxt: int) -> int:
        """RFC 3517 SetPipe: the sender's estimate of packets in the
        path.  For every outstanding, un-SACKed packet: count it unless
        it is deemed lost, and count it (again) if it was retransmitted.
        """
        pipe = 0
        for seqno in range(snd_una, snd_nxt):
            if seqno in self._sacked:
                continue
            if not self.is_lost(seqno):
                pipe += 1
            if seqno in self._retransmitted:
                pipe += 1
        return pipe

    def next_retransmission(self, snd_una: int, snd_nxt: int) -> Optional[int]:
        """RFC 3517 NextSeg rule 1: the lowest outstanding packet that
        is deemed lost, is not SACKed, and has not been retransmitted
        this episode.  None if no such hole exists."""
        for seqno in range(snd_una, snd_nxt):
            if seqno in self._sacked or seqno in self._retransmitted:
                continue
            if self.is_lost(seqno):
                return seqno
        return None

    def holes(self, snd_una: int, snd_nxt: int) -> list:
        """All outstanding un-SACKed packets (diagnostics)."""
        return [s for s in range(snd_una, snd_nxt) if s not in self._sacked]
