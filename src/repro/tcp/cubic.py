"""TCP CUBIC (RFC 8312): the default congestion control of Linux and
a "modern rival" the paper never met.

Growth is a cubic function of *time since the last congestion event*
rather than of ACK arrivals, so the window ramps aggressively far from
the last loss point and plateaus near it:

    W_cubic(t) = C * (t - K)^3 + W_max,   K = cbrt(W_max * (1-beta) / C)

where ``W_max`` is the window just before the last reduction.  Three
RFC 8312 behaviours are modelled:

* **beta = 0.7 multiplicative decrease** on every congestion signal
  (fast retransmit, timeout-derived ssthresh, ECN echo) instead of
  Reno's 0.5 — CUBIC gives back less when it backs off;
* **fast convergence**: when a new loss arrives *below* the previous
  ``W_max`` the flow is losing capacity to a newcomer, so ``W_max`` is
  shrunk an extra ``(2-beta)/2`` to release bandwidth faster;
* **TCP-friendly region**: per ACK, the window never grows slower than
  the AIMD(3(1-beta)/(1+beta), beta) estimate ``W_est`` — in
  short-RTT/high-loss regimes CUBIC degrades to Reno-equivalence
  rather than below it.

Loss *detection and repair* reuse the New-Reno partial-ACK machinery
(RFC 6582 is what Linux CUBIC runs over, minus SACK scoreboards): only
the window-adjustment rules differ.  The cubic clock reads
``sim.now`` and the smoothed RTT estimate, both deterministic, so runs
stay bit-identical across backends; epoch state lives in plain float
attributes and pickles with the sender.

Observable signature (for ``repro.ident`` feature extraction): concave
ramp toward ``W_max`` then convex probing beyond it in the ``tcp.cwnd``
series, 0.7-factor drops at ``tcp.recovery_enter``, and inter-loss
spacing that *shortens* as the link empties (time-based probing).
"""

from __future__ import annotations

from repro.tcp.newreno import NewRenoSender

#: RFC 8312 §5: the cubic coefficient (units: packets/second^3).
CUBIC_C = 0.4
#: RFC 8312 §4.5: multiplicative decrease factor.
CUBIC_BETA = 0.7


class CubicSender(NewRenoSender):
    """CUBIC window growth over New-Reno recovery machinery."""

    variant = "cubic"

    #: RFC 2582 partial window deflation (the milder, modern reaction).
    partial_window_deflation = True
    #: Class-level so tests can subclass with fast convergence off.
    fast_convergence = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Window just before the last congestion event; the plateau the
        # cubic curve aims back at.  0 = no congestion seen yet.
        self._w_max: float = 0.0
        # Congestion-avoidance epoch: time the current cubic curve was
        # anchored, the window it started from, and K (seconds from
        # anchor to plateau).  ``None`` start = anchor on the next
        # congestion-avoidance ACK.
        self._epoch_start = None  # type: float | None
        self._w_epoch: float = 0.0
        self._k: float = 0.0

    # ------------------------------------------------------------------
    # multiplicative decrease (shared by fast retransmit / RTO / ECN)
    # ------------------------------------------------------------------
    def _halved_ssthresh(self) -> float:
        """CUBIC's decrease: remember ``W_max`` (with fast convergence),
        reset the cubic epoch, and cut by ``beta`` = 0.7.

        Overriding this hook routes *every* congestion signal — the
        New-Reno fast retransmit, the base-class timeout ssthresh, and
        the ECN echo reaction — through the CUBIC reduction rule.
        """
        w = max(self.cwnd, 1.0)
        if self.fast_convergence and w < self._w_max:
            # Losing ground: release capacity faster (RFC 8312 §4.6).
            self._w_max = w * (2.0 - CUBIC_BETA) / 2.0
        else:
            self._w_max = w
        self._epoch_start = None
        return max(w * CUBIC_BETA, 2.0)

    # ------------------------------------------------------------------
    # cubic growth
    # ------------------------------------------------------------------
    def _srtt_estimate(self) -> float:
        """Smoothed RTT, or the initial RTO as a pre-sample stand-in."""
        srtt = self.rto.srtt
        if srtt is None or srtt <= 0.0:
            return self.config.initial_rto
        return srtt

    def _open_cwnd(self) -> None:
        if self._suppress_growth:
            self._suppress_growth = False
            return
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0  # slow start, unchanged from Reno
            self._note_cwnd()
            return
        now = self.sim.now
        rtt = self._srtt_estimate()
        if self._epoch_start is None:
            # Anchor a new cubic curve at the current window.
            self._epoch_start = now
            self._w_epoch = self.cwnd
            if self._w_max > self.cwnd:
                self._k = ((self._w_max - self.cwnd) / CUBIC_C) ** (1.0 / 3.0)
            else:
                # Already past the old plateau (or none): pure convex
                # probing from here.
                self._w_max = self.cwnd
                self._k = 0.0
        t = now - self._epoch_start
        target = CUBIC_C * (t - self._k) ** 3 + self._w_max
        # RFC 8312 §4.2: AIMD-equivalent estimate with the same beta —
        # grows 3(1-beta)/(1+beta) ~ 0.53 packets per RTT from the
        # epoch anchor.
        w_est = self._w_epoch + (
            3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA)
        ) * (t / rtt)
        if target < w_est:
            # TCP-friendly region: track the AIMD estimate.
            if w_est > self.cwnd:
                self.cwnd = w_est
        elif target > self.cwnd:
            # Concave/convex region: close a 1/cwnd fraction of the gap
            # per ACK — reaches ``target`` within one RTT of ACKs.
            self.cwnd += (target - self.cwnd) / self.cwnd
        else:
            # At/above target (e.g. just after the friendly region
            # handed over): minimal probing so the curve can catch up.
            self.cwnd += 1.0 / (100.0 * self.cwnd)
        self._note_cwnd()

    # ------------------------------------------------------------------
    # recovery hooks (entry/exit inherited from New-Reno; the reduction
    # itself is routed through _halved_ssthresh above)
    # ------------------------------------------------------------------
    def _on_timeout_reset(self) -> None:
        super()._on_timeout_reset()
        # The base class took ssthresh through _halved_ssthresh (which
        # reset the epoch); slow start will now climb back to it.
        self._epoch_start = None
