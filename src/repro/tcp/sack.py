"""TCP SACK: selective-acknowledgment recovery with a scoreboard and a
``pipe`` estimator.

Two pipe algorithms are provided:

* ``"sack1"`` (default) — the Fall & Floyd '96 / ns-2 ``Sack1`` agent
  that the paper's evaluation used: ``pipe`` is maintained
  *incrementally* (decremented by one per duplicate ACK, by two per
  partial ACK, incremented per transmission) and the sender transmits
  whenever ``pipe < cwnd`` with ``cwnd`` halved for the whole episode.
  Holes (un-SACKed packets below the highest SACKed one) are
  retransmitted before new data.

* ``"rfc3517"`` — the modern conservative recovery: ``pipe`` is
  *recomputed* from the scoreboard on every ACK (``SetPipe``), and only
  packets the IsLost predicate deems lost are retransmitted.  This is
  measurably stronger than sack1; the reproduction keeps both so the
  benchmarks can show how much of the paper's "RR beats SACK" margin is
  really "RR beats *1996* SACK" (see EXPERIMENTS.md).

Either way, this is the variable the paper contrasts ``actnum`` with in
Section 2.1: "the variable pipe just passively estimates the number of
outstanding packets in the path" while cwnd keeps the control role —
and SACK needs a cooperating receiver, which RR does not.
"""

from __future__ import annotations

from repro.net.packet import Packet
from repro.tcp.base import TcpSender
from repro.tcp.scoreboard import Scoreboard


class SackSender(TcpSender):
    """SACK-based loss recovery (requires a SACK-capable receiver)."""

    variant = "sack"

    #: "sack1" (paper-era, default) or "rfc3517" (modern conservative).
    pipe_algorithm = "sack1"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.scoreboard = Scoreboard(self.config.dupack_threshold)
        # Same RFC 2582-style guard as New-Reno (see newreno.py).
        self._no_retransmit_below = -1
        self._pipe = 0  # incremental estimate (sack1 mode only)

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def _process_new_ack(self, packet: Packet) -> None:
        self.scoreboard.update(packet.ackno, packet.sack_blocks)
        super()._process_new_ack(packet)

    def _process_dupack(self, packet: Packet) -> None:
        self.scoreboard.update(packet.ackno, packet.sack_blocks)
        super()._process_dupack(packet)

    def _fast_retransmit(self, packet: Packet) -> None:
        if self.snd_una <= self._no_retransmit_below:
            return
        self.ssthresh = self._halved_ssthresh()
        self.cwnd = self.ssthresh
        self._note_cwnd()
        self.recover = self.maxseq
        # sack1: the three duplicate ACKs mean three packets have left
        # the network.
        self._pipe = max(self.flight() - self.config.dupack_threshold, 0)
        self._enter_recovery_common()
        self._retransmit_hole(self.snd_una)
        self._timer.restart(self.rto.current())
        self._sack_send()

    def _recovery_dupack(self, packet: Packet) -> None:
        self.dupacks += 1
        self._pipe = max(self._pipe - 1, 0)
        self._sack_send()

    def _recovery_new_ack(self, packet: Packet) -> None:
        ackno = packet.ackno
        self._ack_common(ackno)
        if ackno >= self.recover:
            self._exit_recovery_common()
            self._no_retransmit_below = self.recover
            self.send_available()
            return
        self.in_recovery = True
        self._timer.restart(self.rto.current())
        # Fall & Floyd: a partial ACK implies both the original and its
        # retransmission have left the pipe.
        self._pipe = max(self._pipe - 2, 0)
        if self.pipe_algorithm == "rfc3517":
            # A partial ACK pinpoints the next hole even when fewer
            # than DupThresh SACKed packets sit above it: retransmit it
            # directly (as ns-2 does) rather than stalling into an RTO.
            if not self.scoreboard.is_sacked(self.snd_una) and not self.scoreboard.was_retransmitted(self.snd_una):
                self._retransmit_hole(self.snd_una)
        self._sack_send()

    # ------------------------------------------------------------------
    # pipe-driven transmission
    # ------------------------------------------------------------------
    def current_pipe(self) -> int:
        """The in-path estimate the send decision uses."""
        if self.pipe_algorithm == "rfc3517":
            return self.scoreboard.pipe(self.snd_una, self.snd_nxt)
        return self._pipe

    def _retransmit_hole(self, seqno: int) -> None:
        self._retransmit(seqno)
        self.scoreboard.mark_retransmitted(seqno)
        self._pipe += 1

    def _next_hole(self):
        if self.pipe_algorithm == "rfc3517":
            return self.scoreboard.next_retransmission(self.snd_una, self.snd_nxt)
        # sack1: first un-SACKed, not-yet-retransmitted packet below the
        # highest SACKed one.
        for seqno in range(self.snd_una, self.snd_nxt):
            if self.scoreboard.is_sacked(seqno) or self.scoreboard.was_retransmitted(seqno):
                continue
            if self.scoreboard.sacked_above(seqno) > 0:
                return seqno
            return None  # beyond the highest SACKed packet: not a hole
        return None

    def _sack_send(self) -> None:
        """Transmit while ``pipe < cwnd``: scoreboard holes first, then
        new data, bounded by maxburst per incoming ACK."""
        burst_limit = self.config.max_burst if self.config.max_burst > 0 else None
        sent = 0
        while burst_limit is None or sent < burst_limit:
            if self.current_pipe() + 1 > int(self.cwnd):
                break
            hole = self._next_hole()
            if hole is not None:
                self._retransmit_hole(hole)
            elif self.data_available() and self.flight() < self.config.receiver_window:
                self._send_new()
                self._pipe += 1
            else:
                break
            sent += 1

    def _on_timeout_reset(self) -> None:
        self.in_recovery = False
        self.scoreboard.clear()
        self._pipe = 0
        self._no_retransmit_below = self.maxseq - 1
        self.recover = self.snd_una


class SackRfc3517Sender(SackSender):
    """SACK with the modern RFC 3517 pipe algorithm (extension)."""

    variant = "sack3517"
    pipe_algorithm = "rfc3517"
