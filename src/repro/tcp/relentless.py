"""Relentless TCP (Mathis, draft-mathis-iccrg-relentless-tcp): the
no-multiplicative-backoff rival.

The defining rule: on loss, reduce ``cwnd`` by *exactly the number of
segments lost* — never halve.  Growth stays AIMD's +1/RTT, so under a
random per-packet loss rate ``p`` the window equilibrates where the
per-RTT gain (1) equals the per-RTT loss (``p * W``):

    W* = 1 / p            (vs Reno's  W* = sqrt(3/2) / sqrt(p))

— the 1/p scaling Diana & Lochin derive analytically
(:mod:`repro.models.relentless` implements their model as the oracle
for this sender).  Relentless is deliberately *not* TCP-friendly: it
only sheds what the network actually destroyed, so against AIMD flows
it converges to a much larger share.  That is exactly why it is in the
rivals grid — the paper's friendliness tables assume everyone halves.

Implementation: New-Reno partial-ACK recovery supplies loss detection,
hole retransmission and ACK-clock maintenance (dup-ACK inflation is
kept purely as pipe bookkeeping); the differences are confined to the
window arithmetic:

* entry does **not** halve — it pins ``ssthresh`` one segment below
  the entry window (losses are repaid, not discounted);
* every retransmitted hole counts one lost segment;
* congestion avoidance *continues through recovery* (the draft's
  other half: without it, a flow at the 1/p equilibrium — which sees
  one loss event per RTT and so lives in recovery — would never grow).
  Each in-recovery ACK tallies growth at the entry-window CA rate
  (``1/entry_cwnd``), applied at exit;
* the *full* ACK deflates to
  ``entry_cwnd + tallied_growth - lost_segments`` and sets
  ``ssthresh`` to the same value, so the sender resumes congestion
  avoidance (never slow start) after recovery;
* retransmission timeouts keep the full conservative response
  (ssthresh = flight/2, cwnd = 1, go-back-N): per the draft, losing
  the ACK clock entirely still warrants a real backoff.

Observable signature (for ``repro.ident``): sawtooth teeth of depth
~``#lost`` instead of ``W/2`` in ``tcp.cwnd``, recovery exits that
barely dent the window, and a near-constant send rate across loss
episodes.
"""

from __future__ import annotations

from repro.net.packet import Packet
from repro.tcp.newreno import NewRenoSender


class RelentlessSender(NewRenoSender):
    """Mathis-style Relentless congestion control."""

    variant = "relentless"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Window at recovery entry, lost segments repaired during the
        # current episode (= retransmissions: the entry hole plus one
        # per partial ACK), and congestion-avoidance growth tallied
        # across the episode (1/entry_cwnd per in-recovery ACK).
        self._entry_cwnd: float = 0.0
        self._episode_losses: int = 0
        self._episode_growth: float = 0.0

    def _fast_retransmit(self, packet: Packet) -> None:
        if self.snd_una <= self._no_retransmit_below:
            return  # stale duplicates from an earlier episode
        self._entry_cwnd = self.cwnd
        self._episode_losses = 1
        self._episode_growth = 0.0
        # No halving: park ssthresh just below the entry window so the
        # post-recovery sender is in congestion avoidance, and keep the
        # usual +dupack_threshold inflation for ACK clocking.
        self.ssthresh = max(self.cwnd - 1.0, 2.0)
        self.cwnd = self.ssthresh + self.config.dupack_threshold
        self._note_cwnd()
        self.recover = self.maxseq
        self._enter_recovery_common()
        self._retransmit(self.snd_una)
        self._timer.restart(self.rto.current())

    def _recovery_dupack(self, packet: Packet) -> None:
        # CA keeps running through recovery: one delivered packet's
        # worth of growth, at the entry-window rate.
        self._episode_growth += 1.0 / max(self._entry_cwnd, 1.0)
        super()._recovery_dupack(packet)

    def _recovery_new_ack(self, packet: Packet) -> None:
        ackno = packet.ackno
        self._episode_growth += 1.0 / max(self._entry_cwnd, 1.0)
        if ackno >= self.recover:
            # Full ACK: give back exactly the segments the path lost,
            # keep the growth CA earned meanwhile.
            self.cwnd = max(
                self._entry_cwnd + self._episode_growth - self._episode_losses, 2.0
            )
            self.ssthresh = self.cwnd
            self._note_cwnd()
            self._exit_recovery_common()
            self._no_retransmit_below = self.recover
            self._ack_common(ackno)
            self._send_limited()
            return
        # Partial ACK: one more hole = one more lost segment.  Deflate
        # RFC 2582-style (acked amount minus the one retransmission) so
        # the ACK clock keeps ticking, and repair the hole.
        self._episode_losses += 1
        newly_acked = ackno - self.snd_una
        self._ack_common(ackno)
        self.cwnd = max(self.cwnd - newly_acked + 1.0, 1.0)
        self._note_cwnd()
        self.in_recovery = True  # _ack_common does not touch it; explicit
        self._retransmit(self.snd_una)
        self._timer.restart(self.rto.current())
        self._send_limited()
