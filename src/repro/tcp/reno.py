"""TCP Reno: fast retransmit + classic fast recovery (RFC 2581).

On the third duplicate ACK the sender halves its window
(``ssthresh = flight/2``), retransmits the hole and inflates
``cwnd = ssthresh + 3``; each further duplicate ACK inflates ``cwnd``
by one packet, releasing new data once the inflated window exceeds the
(frozen) flight size.  *Any* new ACK — even a partial one — deflates
``cwnd`` to ``ssthresh`` and exits recovery.

That exit-on-partial-ACK is Reno's documented weakness with bursty
losses: each remaining hole needs a fresh fast retransmit (halving the
window again) or a timeout.  The paper leans on this to motivate both
New-Reno and RR.
"""

from __future__ import annotations

from repro.net.packet import Packet
from repro.tcp.base import TcpSender


class RenoSender(TcpSender):
    """Reno fast recovery, including its multiple-halving pathology."""

    variant = "reno"

    def _fast_retransmit(self, packet: Packet) -> None:
        self.ssthresh = self._halved_ssthresh()
        self.cwnd = self.ssthresh + self.config.dupack_threshold
        self._note_cwnd()
        self.recover = self.maxseq
        self._enter_recovery_common()
        self._retransmit(self.snd_una)
        self._timer.restart(self.rto.current())

    def _recovery_dupack(self, packet: Packet) -> None:
        self.dupacks += 1
        self.cwnd += 1.0  # window inflation
        self._note_cwnd()
        self.send_available()

    def _recovery_new_ack(self, packet: Packet) -> None:
        # Reno exits on ANY new ACK, partial or full: deflate and resume
        # congestion avoidance.
        self.cwnd = self.ssthresh
        self._note_cwnd()
        self._exit_recovery_common()
        self._ack_common(packet.ackno)
        self.send_available()
