"""TCP agents: the sender base machinery, the baseline variants the
paper compares against (Tahoe, Reno, New-Reno, SACK), two additional
recovery schemes the paper's introduction discusses (right-edge
recovery and Lin-Kung), and the receiver side.

The paper's contribution, Robust Recovery, lives in
:mod:`repro.core.robust_recovery` and plugs into the same base class.
"""

from repro.tcp.base import SenderObserver, TcpSender
from repro.tcp.factory import VARIANTS, make_connection, receiver_class_for, sender_class_for
from repro.tcp.newreno import NewRenoSender
from repro.tcp.receiver import SackReceiver, TcpReceiver
from repro.tcp.reno import RenoSender
from repro.tcp.rightedge import LinKungSender, RightEdgeSender
from repro.tcp.rtt import RtoEstimator
from repro.tcp.sack import SackRfc3517Sender, SackSender
from repro.tcp.scoreboard import Scoreboard
from repro.tcp.smoothstart import (
    SmoothStartMixin,
    SmoothStartNewRenoSender,
    SmoothStartRenoSender,
    SmoothStartRrSender,
)
from repro.tcp.tahoe import TahoeSender
from repro.tcp.vegas import VegasSender

__all__ = [
    "TcpSender",
    "SenderObserver",
    "TcpReceiver",
    "SackReceiver",
    "RtoEstimator",
    "TahoeSender",
    "RenoSender",
    "NewRenoSender",
    "SackSender",
    "SackRfc3517Sender",
    "Scoreboard",
    "RightEdgeSender",
    "LinKungSender",
    "VegasSender",
    "SmoothStartMixin",
    "SmoothStartRenoSender",
    "SmoothStartNewRenoSender",
    "SmoothStartRrSender",
    "VARIANTS",
    "make_connection",
    "sender_class_for",
    "receiver_class_for",
]
