"""Two recovery tweaks discussed in the paper's introduction, included
as extra baselines for ablation studies.

* **Right-edge recovery** (Balakrishnan et al., INFOCOM'98 [1]): during
  fast recovery "one new data packet is sent out upon receipt of each
  duplicate ACK, instead of two duplicate ACKs" — it keeps the ACK
  clock alive under tiny windows, but (the paper argues) refuses to
  drain congestion because the packet-conservation rule is violated
  right when the network is overloaded.

* **Lin–Kung** (INFOCOM'98 [12]): a new data packet is generated upon
  each of the *first two* duplicate ACKs, i.e. before fast retransmit
  even triggers, retaining aggressiveness when the duplicates turn out
  to be reordering rather than loss.

Both are implemented as deltas over New-Reno, which is how the
literature frames them.
"""

from __future__ import annotations

from repro.net.packet import Packet
from repro.tcp.newreno import NewRenoSender


class RightEdgeSender(NewRenoSender):
    """New-Reno whose recovery sends one new packet per duplicate ACK."""

    variant = "rightedge"

    def _recovery_dupack(self, packet: Packet) -> None:
        self.dupacks += 1
        # Bypass window inflation arithmetic: each duplicate ACK means a
        # packet left the network, so transmit one new packet directly
        # (respecting only the receiver window and data availability).
        if self.data_available() and self.flight() < self.config.receiver_window:
            self._send_new()


class LinKungSender(NewRenoSender):
    """New-Reno that also sends new data on the first two duplicate ACKs."""

    variant = "linkung"

    def _process_dupack(self, packet: Packet) -> None:
        if not self.in_recovery and self.dupacks < 2:
            if self.data_available() and self.flight() < self.config.receiver_window:
                self._send_new()
        super()._process_dupack(packet)
