"""RTO estimation: RFC 6298 SRTT/RTTVAR with Karn's rule and
exponential back-off.

Karn's rule itself (never sample a retransmitted packet) is enforced by
the sender's bookkeeping; this class handles the arithmetic:

* first sample:  SRTT = R,  RTTVAR = R/2
* afterwards:    RTTVAR = (1-β)·RTTVAR + β·|SRTT - R|   (β = 1/4)
                 SRTT   = (1-α)·SRTT   + α·R            (α = 1/8)
* RTO = SRTT + max(G, 4·RTTVAR), clamped to [min_rto, max_rto]
* back-off doubles the effective RTO per consecutive timeout; a new
  sample resets the back-off.
"""

from __future__ import annotations

from typing import Optional

from repro.config import TcpConfig
from repro.errors import ConfigurationError

ALPHA = 1.0 / 8.0
BETA = 1.0 / 4.0


class RtoEstimator:
    """Retransmission-timeout estimator.

    Parameters
    ----------
    config:
        Supplies ``initial_rto``, ``min_rto``, ``max_rto`` and
        ``timer_granularity`` (the ``G`` in RFC 6298).
    """

    def __init__(self, config: Optional[TcpConfig] = None):
        self._config = config or TcpConfig()
        self._config.validate()
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._rto = max(self._config.initial_rto, self._config.min_rto)
        self._backoff = 1
        self.samples = 0

    @property
    def backoff_factor(self) -> int:
        """Current exponential back-off multiplier (1 = no back-off)."""
        return self._backoff

    def on_sample(self, rtt: float) -> None:
        """Feed one RTT measurement (seconds)."""
        if rtt < 0:
            raise ConfigurationError(f"negative RTT sample: {rtt}")
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1 - BETA) * self.rttvar + BETA * abs(self.srtt - rtt)
            self.srtt = (1 - ALPHA) * self.srtt + ALPHA * rtt
        g = self._config.timer_granularity
        raw = self.srtt + max(g, 4.0 * self.rttvar)
        self._rto = min(max(raw, self._config.min_rto), self._config.max_rto)
        self._backoff = 1
        self.samples += 1

    def current(self) -> float:
        """The RTO to arm the retransmission timer with, back-off applied."""
        return min(self._rto * self._backoff, self._config.max_rto)

    def backoff(self) -> None:
        """Double the RTO after a timeout (capped at max_rto)."""
        if self._rto * self._backoff < self._config.max_rto:
            self._backoff *= 2

    def reset(self) -> None:
        """Forget all history (e.g. for a brand-new connection)."""
        self.srtt = None
        self.rttvar = None
        self._rto = max(self._config.initial_rto, self._config.min_rto)
        self._backoff = 1
        self.samples = 0
