"""TCP receiver agents.

:class:`TcpReceiver` implements the behaviour the paper assumes:

* cumulative ACKs carrying the *next expected* packet number;
* "upon the arrival of an out-of-sequence data packet at the receiver,
  the delayed acknowledgment mechanism is off: the receiver immediately
  sends out an ACK for each received out-of-sequence data packet"
  (Section 2.2) — we go further and default to ACK-per-packet for
  in-order data too, matching Section 3.1 ("The receiver sends an ACK
  for every data packet it received");
* an optional RFC 1122 delayed-ACK mode is provided for experiments
  beyond the paper (in-order data only; out-of-order always ACKs
  immediately, as RFC 5681 requires).

:class:`SackReceiver` additionally reports up to ``sack_block_limit``
SACK blocks (RFC 2018 ordering: the block containing the most recently
received packet first).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.config import TcpConfig
from repro.net.node import Agent
from repro.net.packet import Packet, SackBlock, ack_packet, merge_ranges
from repro.sim.engine import Simulator
from repro.sim.timers import Timer


class TcpReceiver(Agent):
    """Cumulative-ACK receiver."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        config: Optional[TcpConfig] = None,
    ):
        super().__init__(flow_id)
        self.sim = sim
        self.config = config or TcpConfig()
        self.config.validate()
        self.rcv_next = 0
        self._out_of_order: Set[int] = set()
        self._peer: Optional[str] = None
        self.packets_received = 0
        self.duplicates_received = 0
        self.acks_sent = 0
        self._delack_pending = 0
        self._delack_timer = Timer(sim, self._delack_fire)
        self._ecn_echo_pending = False
        self.ecn_marks_seen = 0

    @property
    def delivered(self) -> int:
        """Packets delivered in order to the application so far."""
        return self.rcv_next

    @property
    def buffered_out_of_order(self) -> int:
        return len(self._out_of_order)

    def receive(self, packet: Packet) -> None:
        if not packet.is_data:
            return  # receivers ignore stray ACKs
        self._peer = packet.src
        self.packets_received += 1
        if packet.ecn_marked:
            # Simplified RFC 3168: echo the congestion mark on the ACK
            # this packet generates (no CWR handshake modelled).
            self._ecn_echo_pending = True
            self.ecn_marks_seen += 1
        seqno = packet.seqno
        if seqno == self.rcv_next:
            # RFC 5681: an ACK must be generated immediately when the
            # arriving segment fills in all or part of a sequence gap —
            # only gap-free in-order data may take the delayed path.
            filled_gap = bool(self._out_of_order)
            self.rcv_next += 1
            while self.rcv_next in self._out_of_order:
                self._out_of_order.discard(self.rcv_next)
                self.rcv_next += 1
            # RFC 3168 section 6.1.3: a congestion-experienced mark must
            # reach the sender without waiting out the delayed-ACK timer,
            # else the congestion response lags by up to the full timeout.
            if filled_gap or self._ecn_echo_pending:
                self._send_ack()
            else:
                self._ack_in_order()
        elif seqno < self.rcv_next or seqno in self._out_of_order:
            # Duplicate (e.g. a spurious retransmission): ACK immediately.
            self.duplicates_received += 1
            self._send_ack()
        else:
            # Out of order: buffer and ACK immediately (dup ACK).
            self._out_of_order.add(seqno)
            self._send_ack()

    def _ack_in_order(self) -> None:
        if not self.config.delayed_ack:
            self._send_ack()
            return
        self._delack_pending += 1
        if self._delack_pending >= 2:
            self._delack_flush()
        elif not self._delack_timer.pending:
            self._delack_timer.start(self.config.delayed_ack_timeout)

    def _delack_fire(self) -> None:
        if self._delack_pending:
            self._delack_flush()

    def _delack_flush(self) -> None:
        self._delack_pending = 0
        self._delack_timer.stop()
        self._send_ack()

    def _sack_blocks(self) -> List[SackBlock]:
        return []

    def _send_ack(self) -> None:
        if self._peer is None:
            return
        # Any explicit ACK also covers whatever a pending delayed ACK
        # would have acknowledged.
        self._delack_pending = 0
        self._delack_timer.stop()
        ack = ack_packet(
            self.flow_id,
            self.local_name,
            self._peer,
            self.rcv_next,
            size=self.config.ack_bytes,
            sack_blocks=self._sack_blocks(),
        )
        if self._ecn_echo_pending:
            ack.ecn_echo = True
            self._ecn_echo_pending = False
        ack.sent_at = self.sim.now
        self.acks_sent += 1
        self.send(ack)


class SackReceiver(TcpReceiver):
    """Receiver that attaches SACK blocks to every ACK."""

    def __init__(self, sim: Simulator, flow_id: int, config: Optional[TcpConfig] = None):
        super().__init__(sim, flow_id, config)
        self._last_seqno: Optional[int] = None

    def receive(self, packet: Packet) -> None:
        if packet.is_data:
            self._last_seqno = packet.seqno
        super().receive(packet)

    def _sack_blocks(self) -> List[SackBlock]:
        if not self._out_of_order:
            return []
        ranges = merge_ranges([(s, s + 1) for s in self._out_of_order])
        blocks = [SackBlock(start, end) for start, end in ranges]
        # RFC 2018: the block containing the most recently received
        # packet comes first.
        if self._last_seqno is not None:
            blocks.sort(
                key=lambda b: (0 if self._last_seqno in b else 1, -b.start)
            )
        return blocks[: self.config.sack_block_limit]
