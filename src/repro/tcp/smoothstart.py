"""Smooth-start (Wang, Xin, Reeves & Shin, ISCC 2000 — the paper's
reference [21]).

Classic slow start doubles the window every RTT all the way to
``ssthresh``; its final doubling can dump ``ssthresh/2`` excess packets
into a buffer at once, creating exactly the bursty in-window losses the
RR paper sets out to survive.  Smooth-start is the companion fix on the
*ramp-up* side — "an optimization of the Slow-start algorithm, which is
orthogonal to the enhanced recovery schemes" (§1) — and orthogonal is
taken literally here: :class:`SmoothStartMixin` composes with any
sender variant.

Mechanism (our documented interpretation of [21]): below
``ssthresh/2`` the window doubles per RTT as usual; the remaining climb
to ``ssthresh`` is split into ``smooth_rounds`` sub-phases whose
per-ACK increment halves each time (1/2, 1/4, ... packets per ACK), so
the growth flattens smoothly into the congestion-avoidance slope
instead of slamming into the buffer.
"""

from __future__ import annotations

from repro.core.robust_recovery import RobustRecoverySender
from repro.tcp.newreno import NewRenoSender
from repro.tcp.reno import RenoSender


class SmoothStartMixin:
    """Replace the slow-start growth law; everything else untouched."""

    #: number of tapering sub-phases between ssthresh/2 and ssthresh
    smooth_rounds = 3

    def _open_cwnd(self) -> None:
        if self.cwnd >= self.ssthresh:
            super()._open_cwnd()  # congestion avoidance unchanged
            return
        half = self.ssthresh / 2.0
        if self.cwnd < half:
            self.cwnd += 1.0  # classic exponential region
            self._note_cwnd()
            return
        # Smooth region: pick the sub-phase by how far cwnd has climbed
        # through [ssthresh/2, ssthresh), increment by 2^-(phase+1).
        span = self.ssthresh - half
        progress = min((self.cwnd - half) / span, 0.999) if span > 0 else 0.999
        phase = int(progress * self.smooth_rounds)
        self.cwnd = min(self.cwnd + 0.5 ** (phase + 1), self.ssthresh)
        self._note_cwnd()


class SmoothStartRenoSender(SmoothStartMixin, RenoSender):
    """Reno with smooth-start."""

    variant = "ss-reno"


class SmoothStartNewRenoSender(SmoothStartMixin, NewRenoSender):
    """New-Reno with smooth-start."""

    variant = "ss-newreno"


class SmoothStartRrSender(SmoothStartMixin, RobustRecoverySender):
    """Robust Recovery with smooth-start: reference [21] and this
    paper's contribution composed, prevention plus cure."""

    variant = "ss-rr"
