"""TCP Vegas (Brakmo, O'Malley & Peterson, SIGCOMM'94) — the §1 foil.

The paper's introduction cites Hengartner et al. [8]: "the performance
gain of TCP Vegas over TCP Reno is due mainly to TCP Vegas' new
techniques for slow-start and congestion recovery ... not the
innovative congestion-avoidance mechanism".  Having Vegas in the same
harness lets a user replay that decomposition (see the ablation knobs
below).

Implemented mechanisms:

* **baseRTT tracking** — the minimum RTT ever observed is the
  propagation estimate;
* **congestion-avoidance adjustment** — once per RTT compare the
  expected throughput ``cwnd/baseRTT`` with the actual ``cwnd/RTT``;
  the backlog estimate ``diff = (expected - actual) * baseRTT`` is held
  between ``alpha`` and ``beta`` packets by ±1 adjustments;
* **modified slow start** — the window doubles only every *other* RTT,
  and slow start ends early once ``diff`` exceeds ``gamma``;
* **expedited retransmission** — on the first and second duplicate
  ACKs, retransmit immediately if the oldest outstanding packet has
  been out longer than the fine-grained timeout (srtt + 4·rttvar),
  instead of waiting for the third duplicate;
* recovery itself is Reno-style fast recovery (entered either via the
  expedited check or the usual third duplicate ACK) — per [8], that
  recovery is where Vegas' gain lives.

The per-mechanism switches (``enable_vegas_ca``, ``enable_vegas_ss``,
``enable_expedited_rtx``) default to on; turning them off one at a time
reproduces the [8] decomposition.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.packet import Packet
from repro.tcp.base import TcpSender

ALPHA = 1.0   # packets of backlog below which cwnd grows
BETA = 3.0    # packets of backlog above which cwnd shrinks
GAMMA = 1.0   # slow-start exit threshold (packets of backlog)


class VegasSender(TcpSender):
    """TCP Vegas sender (delay-based CA + expedited retransmit)."""

    variant = "vegas"

    enable_vegas_ca = True
    enable_vegas_ss = True
    enable_expedited_rtx = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.base_rtt: Optional[float] = None
        self.last_rtt: Optional[float] = None
        self._send_times: Dict[int, float] = {}
        # Per-RTT adjustment bookkeeping: adjust when snd_una passes
        # the marker recorded at the previous adjustment.
        self._adjust_marker = 0
        self._ss_grow_this_round = True
        self.ca_adjustments = 0
        self.expedited_retransmits = 0

    # ------------------------------------------------------------------
    # RTT bookkeeping (per-packet, Vegas' fine-grained clock)
    # ------------------------------------------------------------------
    def _transmit(self, seqno: int, retransmit: bool) -> None:
        if not retransmit:
            self._send_times[seqno] = self.sim.now
        super()._transmit(seqno, retransmit)

    def _record_rtt(self, ackno: int) -> None:
        sent_at = self._send_times.get(ackno - 1)
        if sent_at is not None:
            rtt = self.sim.now - sent_at
            self.last_rtt = rtt
            if self.base_rtt is None or rtt < self.base_rtt:
                self.base_rtt = rtt
        for seqno in [s for s in self._send_times if s < ackno]:
            del self._send_times[seqno]

    def _fine_timeout(self) -> float:
        """Vegas' fine-grained RTO estimate."""
        if self.rto.srtt is None:
            return self.rto.current()
        return self.rto.srtt + 4.0 * (self.rto.rttvar or 0.0)

    # ------------------------------------------------------------------
    # congestion avoidance / slow start
    # ------------------------------------------------------------------
    def backlog_estimate(self) -> Optional[float]:
        """diff = (expected - actual) * baseRTT, in packets."""
        if self.base_rtt is None or self.last_rtt is None or self.last_rtt <= 0:
            return None
        expected = self.cwnd / self.base_rtt
        actual = self.cwnd / self.last_rtt
        return (expected - actual) * self.base_rtt

    def _open_cwnd(self) -> None:
        if not (self.enable_vegas_ca or self.enable_vegas_ss):
            super()._open_cwnd()
            return
        in_slow_start = self.cwnd < self.ssthresh
        if in_slow_start and self.enable_vegas_ss:
            self._vegas_slow_start()
        elif in_slow_start:
            self.cwnd += 1.0
            self._note_cwnd()
        elif self.enable_vegas_ca:
            self._vegas_adjust()
        else:
            super()._open_cwnd()

    def _vegas_slow_start(self) -> None:
        diff = self.backlog_estimate()
        if diff is not None and diff > GAMMA:
            # Leave slow start early: the pipe is filling.
            self.ssthresh = max(2.0, self.cwnd)
            self._vegas_adjust()
            return
        if self._ss_grow_this_round:
            self.cwnd += 1.0
            self._note_cwnd()
        self._maybe_rotate_round()

    def _vegas_adjust(self) -> None:
        if self.snd_una < self._adjust_marker:
            return  # not a full RTT yet
        diff = self.backlog_estimate()
        self._adjust_marker = self.snd_nxt
        if diff is None:
            return
        if diff < ALPHA:
            self.cwnd += 1.0
        elif diff > BETA:
            self.cwnd = max(self.cwnd - 1.0, 2.0)
        self.ca_adjustments += 1
        self._note_cwnd()

    def _maybe_rotate_round(self) -> None:
        if self.snd_una >= self._adjust_marker:
            self._adjust_marker = self.snd_nxt
            self._ss_grow_this_round = not self._ss_grow_this_round

    # ------------------------------------------------------------------
    # recovery (Reno fast recovery + expedited entry)
    # ------------------------------------------------------------------
    def _process_dupack(self, packet: Packet) -> None:
        if self.in_recovery:
            self._recovery_dupack(packet)
            return
        self.dupacks += 1
        if self.dupacks == self.config.dupack_threshold:
            self._fast_retransmit(packet)
        elif self.enable_expedited_rtx and self.dupacks in (1, 2):
            sent_at = self._send_times.get(self.snd_una)
            if sent_at is not None and self.sim.now - sent_at > self._fine_timeout():
                self.expedited_retransmits += 1
                self._fast_retransmit(packet)

    def _fast_retransmit(self, packet: Packet) -> None:
        self.ssthresh = self._halved_ssthresh()
        self.cwnd = self.ssthresh + self.config.dupack_threshold
        self._note_cwnd()
        self.recover = self.maxseq
        self._enter_recovery_common()
        self._retransmit(self.snd_una)
        self._timer.restart(self.rto.current())

    def _recovery_dupack(self, packet: Packet) -> None:
        self.dupacks += 1
        self.cwnd += 1.0
        self._note_cwnd()
        self.send_available()

    def _recovery_new_ack(self, packet: Packet) -> None:
        # Reno-style: any new ACK deflates and exits.
        self.cwnd = self.ssthresh
        self._note_cwnd()
        self._exit_recovery_common()
        self._ack_common(packet.ackno)
        self._record_rtt(packet.ackno)
        self.send_available()

    def _process_new_ack(self, packet: Packet) -> None:
        if self.in_recovery:
            self._recovery_new_ack(packet)
            return
        self._ack_common(packet.ackno)
        self._record_rtt(packet.ackno)
        self._open_cwnd()
        self.send_available()

    def _on_timeout_reset(self) -> None:
        self.in_recovery = False
        self._send_times.clear()
        self._adjust_marker = self.snd_una
