"""Variant registry: build matched sender/receiver pairs by name.

The paper's evaluation names four schemes — Tahoe, (New-)Reno, SACK and
RR — plus the two introduction-discussed tweaks we ship as extras.
``make_connection`` wires a sender on one host to a receiver on another
and returns both agents.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

from repro.config import TcpConfig
from repro.core.robust_recovery import RobustRecoverySender
from repro.errors import ConfigurationError
from repro.net.node import Host
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.tcp.base import SenderObserver, TcpSender
from repro.tcp.cubic import CubicSender
from repro.tcp.newreno import NewRenoSender
from repro.tcp.receiver import SackReceiver, TcpReceiver
from repro.tcp.relentless import RelentlessSender
from repro.tcp.reno import RenoSender
from repro.tcp.rightedge import LinKungSender, RightEdgeSender
from repro.tcp.sack import SackRfc3517Sender, SackSender
from repro.tcp.smoothstart import (
    SmoothStartNewRenoSender,
    SmoothStartRenoSender,
    SmoothStartRrSender,
)
from repro.tcp.tahoe import TahoeSender
from repro.tcp.vegas import VegasSender

#: variant name -> (sender class, receiver class)
VARIANTS: Dict[str, Tuple[Type[TcpSender], Type[TcpReceiver]]] = {
    "tahoe": (TahoeSender, TcpReceiver),
    "reno": (RenoSender, TcpReceiver),
    "newreno": (NewRenoSender, TcpReceiver),
    "sack": (SackSender, SackReceiver),
    "sack3517": (SackRfc3517Sender, SackReceiver),
    "rr": (RobustRecoverySender, TcpReceiver),
    "rightedge": (RightEdgeSender, TcpReceiver),
    "linkung": (LinKungSender, TcpReceiver),
    "vegas": (VegasSender, TcpReceiver),
    "ss-reno": (SmoothStartRenoSender, TcpReceiver),
    "ss-newreno": (SmoothStartNewRenoSender, TcpReceiver),
    "ss-rr": (SmoothStartRrSender, TcpReceiver),
    # Modern rivals (post-paper; see docs/ALGORITHMS.md):
    "cubic": (CubicSender, TcpReceiver),
    "relentless": (RelentlessSender, TcpReceiver),
}


def sender_class_for(variant: str) -> Type[TcpSender]:
    try:
        return VARIANTS[variant][0]
    except KeyError:
        raise ConfigurationError(
            f"unknown TCP variant {variant!r}; choose from {sorted(VARIANTS)}"
        ) from None


def receiver_class_for(variant: str) -> Type[TcpReceiver]:
    try:
        return VARIANTS[variant][1]
    except KeyError:
        raise ConfigurationError(
            f"unknown TCP variant {variant!r}; choose from {sorted(VARIANTS)}"
        ) from None


def make_connection(
    sim: Simulator,
    variant: str,
    flow_id: int,
    src_host: Host,
    dst_host: Host,
    config: Optional[TcpConfig] = None,
    observer: Optional[SenderObserver] = None,
    trace: Optional[TraceBus] = None,
) -> Tuple[TcpSender, TcpReceiver]:
    """Create and register a sender on ``src_host`` and the matching
    receiver on ``dst_host``.  Note that only RR and the other
    sender-side schemes leave the receiver untouched; SACK swaps in a
    SACK-capable receiver — the deployment cost the paper highlights.
    """
    sender_cls = sender_class_for(variant)
    receiver_cls = receiver_class_for(variant)
    sender = sender_cls(
        sim, flow_id, dst_host.name, config=config, observer=observer, trace=trace
    )
    receiver = receiver_cls(sim, flow_id, config=config)
    src_host.register(sender)
    dst_host.register(receiver)
    return sender, receiver
