"""Storage fsck: sweep the result cache and snapshot store for rot.

``python -m repro.experiments fsck`` walks every on-disk artifact the
sweep stack trusts — framed cache entries, full snapshots, delta files,
and the prefix index — re-running the same integrity checks the read
paths apply (checksum frames, snapshot/delta header + payload
verification, delta base-chain resolvability) over the *whole* tree at
once instead of lazily at first read.

Policy mirrors the read paths (docs/RESILIENCE.md):

* **corrupt** (truncated, bit-flipped, unparseable) — quarantined:
  moved under ``<root>/quarantine/`` with a
  :class:`~repro.runner.resilience.QuarantineRecord` sidecar;
* **foreign** (a format version this build does not speak, including
  pre-framing raw-pickle cache entries) — left in place and counted;
  mixed-version stores degrade to recompute, they are not an error;
* **dangling** (a prefix-index entry pointing at a missing/corrupt
  snapshot) — the index file is removed so the next sweep recaptures;
* with ``rebuild=True``, prefixes whose snapshot is gone but whose
  recipe survives in the prefix-meta index are recomputed and put back
  (:func:`~repro.runner.warmstart.load_prefix`'s healing path, run
  eagerly).

``repair=False`` is a true dry run: nothing on disk is touched, not
even via the store's quarantine-on-read side effects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.errors import SnapshotError, SnapshotFormatError
from repro.runner.cache import ResultCache
from repro.runner.resilience import QUARANTINE_SUBDIR, QuarantineRecord
from repro.runner.warmstart import (
    MAX_DELTA_CHAIN,
    PREFIX_INDEX_SUBDIR,
    PREFIX_META_SUBDIR,
    SNAPSHOT_SUBDIR,
    SnapshotStore,
    load_prefix,
)
from repro.snapshot import Snapshot
from repro.snapshot.delta import DeltaSnapshot


@dataclass
class FsckIssue:
    """One problem found (and possibly acted on) during a sweep."""

    path: str
    kind: str      # cache-entry | snapshot | delta | prefix-index | prefix
    problem: str
    action: str    # quarantined | removed | rebuilt | reported


@dataclass
class FsckReport:
    """Outcome of one :func:`fsck` sweep."""

    root: str = ""
    scanned: int = 0
    ok: int = 0
    #: Files written by a format version this build does not read;
    #: valid, left alone (recompute policy), but worth knowing about.
    foreign: int = 0
    repaired: int = 0
    rebuilt: int = 0
    issues: List[FsckIssue] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        lines = [
            f"fsck {self.root}: {self.scanned} artifacts scanned, "
            f"{self.ok} ok, {self.foreign} foreign (left in place), "
            f"{len(self.issues)} issue(s), {self.repaired} repaired, "
            f"{self.rebuilt} rebuilt"
        ]
        for issue in self.issues:
            lines.append(
                f"  [{issue.kind}] {issue.path}: {issue.problem}"
                f" -> {issue.action}"
            )
        return "\n".join(lines)


def _digest_intact(store: SnapshotStore, digest: str, depth: int = 0) -> bool:
    """Like :meth:`SnapshotStore.intact` but with **no side effects**
    (the store method quarantines what it finds corrupt, which a dry
    run must not)."""
    path = store.path_for(digest)
    if path.exists():
        try:
            Snapshot.verify_file(path)
            return True
        except SnapshotError:
            return False
    delta_path = store.delta_path_for(digest)
    if delta_path.exists() and depth < MAX_DELTA_CHAIN:
        try:
            info = DeltaSnapshot.verify_file(delta_path)
        except SnapshotError:
            return False
        return _digest_intact(store, info.base_digest, depth + 1)
    return False


def fsck(
    cache_root: Optional[Path] = None,
    repair: bool = True,
    rebuild: bool = False,
) -> FsckReport:
    """Sweep the cache + snapshot store under ``cache_root`` (default:
    the standard ``REPRO_CACHE_DIR`` root) and return a report."""
    cache = ResultCache(root=cache_root)
    root = cache.root
    store = SnapshotStore(root / SNAPSHOT_SUBDIR)
    report = FsckReport(root=str(root))

    def issue(path: Path, kind: str, problem: str, action: str) -> None:
        report.issues.append(
            FsckIssue(path=str(path), kind=kind, problem=problem, action=action)
        )
        if action in ("quarantined", "removed", "rebuilt"):
            report.repaired += 1

    def quarantine_cache_entry(path: Path, problem: str) -> str:
        if not repair:
            return "reported"
        try:
            cache.quarantine_dir.mkdir(parents=True, exist_ok=True)
            path.replace(cache.quarantine_dir / path.name)
            QuarantineRecord(
                digest=path.stem,
                label=str(path),
                kind="cache-entry",
                reason=problem,
                path=str(cache.quarantine_dir / path.name),
            ).write(cache.quarantine_dir)
        except OSError:
            return "reported"
        return "quarantined"

    # ---- result cache entries ---------------------------------------
    if root.is_dir():
        for fp_dir in sorted(root.iterdir()):
            if not fp_dir.is_dir() or fp_dir.name in (
                SNAPSHOT_SUBDIR,
                QUARANTINE_SUBDIR,
            ):
                continue
            for entry in sorted(fp_dir.glob("*.pkl")):
                report.scanned += 1
                try:
                    ResultCache.verify_entry(entry)
                except OSError as error:
                    issue(entry, "cache-entry", f"unreadable: {error}", "reported")
                except ValueError as error:
                    if str(error).startswith("unframed or foreign"):
                        report.foreign += 1
                        continue
                    issue(
                        entry,
                        "cache-entry",
                        str(error),
                        quarantine_cache_entry(entry, str(error)),
                    )
                else:
                    report.ok += 1

    # ---- full snapshots ---------------------------------------------
    for snap in sorted(store.root.glob("*.snap")):
        report.scanned += 1
        digest = snap.stem
        try:
            Snapshot.verify_file(snap)
        except SnapshotFormatError:
            report.foreign += 1
        except SnapshotError as error:
            action = "reported"
            if repair:
                store.quarantine(snap, digest, str(error))
                action = "quarantined"
            issue(snap, "snapshot", str(error), action)
        else:
            report.ok += 1

    # ---- delta snapshots --------------------------------------------
    for delta in sorted(store.root.glob("*.delta")):
        report.scanned += 1
        digest = delta.stem
        try:
            info = DeltaSnapshot.verify_file(delta)
        except SnapshotFormatError:
            report.foreign += 1
            continue
        except SnapshotError as error:
            action = "reported"
            if repair:
                store.quarantine(delta, digest, str(error))
                action = "quarantined"
            issue(delta, "delta", str(error), action)
            continue
        if not _digest_intact(store, info.base_digest):
            problem = (
                f"base chain broken (base {info.base_digest[:12]}… missing"
                " or corrupt)"
            )
            action = "reported"
            if repair:
                store.quarantine(delta, digest, problem)
                action = "quarantined"
            issue(delta, "delta", problem, action)
        else:
            report.ok += 1

    # ---- prefix index -----------------------------------------------
    index_root = store.root / PREFIX_INDEX_SUBDIR
    if index_root.is_dir():
        for index_file in sorted(index_root.glob("*/*.json")):
            report.scanned += 1
            problem = None
            try:
                entry = json.loads(index_file.read_text(encoding="utf-8"))
                snapshot_digest = entry.get("snapshot", "")
            except (OSError, json.JSONDecodeError) as error:
                problem, snapshot_digest = f"unparseable: {error}", ""
            if problem is None and not _digest_intact(store, snapshot_digest):
                problem = (
                    f"dangling (snapshot {snapshot_digest[:12]}… missing or"
                    " corrupt)"
                )
            if problem is None:
                report.ok += 1
                continue
            action = "reported"
            if repair:
                try:
                    index_file.unlink()
                    action = "removed"
                except OSError:
                    pass
            issue(index_file, "prefix-index", problem, action)

    # ---- prefix rebuild ---------------------------------------------
    if rebuild:
        meta_root = store.root / PREFIX_META_SUBDIR
        for meta_file in sorted(meta_root.glob("*.json")) if meta_root.is_dir() else []:
            digest = meta_file.stem
            if _digest_intact(store, digest):
                continue
            try:
                load_prefix(digest, store_root=store.root)
            except SnapshotError as error:
                issue(meta_file, "prefix", f"rebuild failed: {error}", "reported")
                continue
            report.rebuilt += 1
            issue(
                store.path_for(digest),
                "prefix",
                "snapshot was missing/corrupt; recomputed from its recipe",
                "rebuilt",
            )

    return report
