"""Sweep execution: fan :class:`TaskSpec` cells out over processes.

``SweepRunner.map`` preserves four invariants the harnesses rely on:

* **Order** — results come back in spec order, whatever order workers
  finish in, so report tables are identical at any ``jobs``.
* **Determinism** — cells are pure functions of their spec (every RNG
  is seeded from spec arguments), so a parallel run is bit-identical
  to a serial one; there is no shared mutable state to race on.
* **Memoization** — with a cache attached, completed cells are looked
  up by ``(task digest, code fingerprint)`` before any process is
  spawned and stored (from the parent, atomically) *as each task
  completes*; a repeat sweep is pure cache replay.
* **Salvage** — a raising (or dying) worker loses only its own cell.
  Every other pending cell still runs and is cached, and only then is
  the failure re-raised (the lowest-index one, so the surfaced error
  is deterministic at any ``jobs``).  ``stats.salvaged`` / ``stats.
  failed`` record the split.

On top of those, the **resilience layer** (docs/RESILIENCE.md) makes
the dispatch loop survive its own infrastructure:

* a :class:`~repro.runner.resilience.RetryPolicy` re-runs failed cells
  on a deterministic, digest-seeded backoff schedule — and because
  cells are pure functions of their spec, a retried-then-succeeded
  cell is bit-identical to a first-try run;
* ``task_timeout`` puts a wall-clock deadline on every in-flight cell:
  an overrunning worker is killed, the pool respawned, and the cell
  charged one attempt (innocent cells caught in the pool break are
  requeued for free);
* a spontaneously dying worker (SIGKILL, OOM) charges every in-flight
  cell one attempt (the break cannot be attributed) and the sweep
  continues on a fresh pool — the repeat offender exhausts its budget
  and is **quarantined**: recorded (spec digest, attempts, errors) as
  a :class:`~repro.runner.resilience.QuarantineRecord` under
  ``quarantine_dir`` instead of wedging the campaign.

``jobs=1`` executes in-process with no executor, keeping single-cell
debugging (pdb, print, profilers) trivial — unless ``task_timeout`` is
set, which needs a killable process boundary and therefore routes
through a one-worker pool.  An attached :class:`SweepObserver` sees
every task-lifecycle event (queued / started / cached / finished /
failed / retried / quarantined) — :mod:`repro.obs` builds the progress
line, heartbeat log and run manifests on top of it — and
``profile_dir`` makes every executed task dump a per-task cProfile
``.pstats`` capture there (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import os
import sys
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, TaskTimeoutError, WorkerCrashError
from repro.runner.cache import ResultCache
from repro.runner.resilience import QuarantineRecord, RetryPolicy
from repro.runner.spec import TaskSpec


def _execute(spec: TaskSpec) -> Any:
    """Bare worker entry point (module-level, hence picklable)."""
    return spec.run()


def _execute_task(spec: TaskSpec, index: int, profile_dir: Optional[str]) -> Any:
    """Worker entry point: run one cell, timing it (and optionally
    profiling it into ``profile_dir``).  Returns ``(value, seconds)``."""
    start = time.perf_counter()
    if profile_dir is None:
        value = spec.run()
    else:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            value = spec.run()
        finally:
            profiler.disable()
            os.makedirs(profile_dir, exist_ok=True)
            profiler.dump_stats(
                os.path.join(
                    profile_dir, f"task-{index:04d}-{spec.digest()[:12]}.pstats"
                )
            )
    return value, time.perf_counter() - start


def default_jobs() -> int:
    """A sensible ``--jobs`` default: all cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


class SweepObserver:
    """Task-lifecycle hook for :class:`SweepRunner` (all methods no-op).

    Implementations override what they need; every callback fires in
    the *coordinating* process, in wall-clock order.  ``task_started``
    means "handed to a worker" when ``jobs > 1`` (the parent cannot see
    inside the pool) and "about to run in-process" at ``jobs = 1``.
    Observer exceptions never fail a sweep: the first one disables the
    observer for the remainder of the run (with a warning on stderr).
    """

    def sweep_started(self, total: int, jobs: int) -> None:
        """A ``map`` call began: ``total`` specs over ``jobs`` workers."""

    def task_queued(self, index: int, spec: TaskSpec) -> None:
        """Spec ``index`` missed the cache and will execute."""

    def task_cached(self, index: int, spec: TaskSpec) -> None:
        """Spec ``index`` was served from the result cache."""

    def task_started(self, index: int, spec: TaskSpec) -> None:
        """Spec ``index`` was handed to a worker (or runs in-process)."""

    def task_finished(self, index: int, spec: TaskSpec, seconds: float) -> None:
        """Spec ``index`` completed in ``seconds`` (worker-measured)."""

    def task_failed(self, index: int, spec: TaskSpec, error: BaseException) -> None:
        """Spec ``index`` raised (or its worker died), permanently —
        its retry budget (if any) is spent."""

    def task_retried(
        self,
        index: int,
        spec: TaskSpec,
        attempt: int,
        delay: float,
        error: BaseException,
    ) -> None:
        """Spec ``index`` failed attempt ``attempt`` (1-based) with
        ``error`` and will re-run after ``delay`` seconds of backoff."""

    def task_quarantined(
        self, index: int, spec: TaskSpec, record: QuarantineRecord
    ) -> None:
        """Spec ``index`` was quarantined as a poison task (budget
        exhausted on timeouts/crashes); ``record`` is its report."""

    def cache_store_failed(self, index: int, spec: TaskSpec, reason: str) -> None:
        """Spec ``index`` completed but its result could not be cached
        — the sweep continues, degraded to recompute-every-time."""

    def sweep_finished(self, stats: "SweepStats") -> None:
        """The ``map`` call is over; ``stats`` is final."""


@dataclass
class TaskRecord:
    """Per-task outcome of the most recent sweep (telemetry payload)."""

    index: int
    label: str
    digest: str
    cached: bool = False
    seconds: Optional[float] = None
    error: Optional[str] = None
    #: Executions this task consumed (1 on the happy path; retries and
    #: charged worker crashes add one each).
    attempts: int = 1
    #: True when the task was written off as poison (see
    #: :class:`~repro.runner.resilience.QuarantineRecord`).
    quarantined: bool = False


@dataclass
class SweepStats:
    """Counters for the most recent :meth:`SweepRunner.map` call."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0
    #: Tasks that completed (and were cached) in a sweep that also had
    #: failures — the results a crashing worker did *not* take down.
    salvaged: int = 0
    failed: int = 0
    #: Retry executions performed across all tasks (0 on a clean run).
    retried: int = 0
    #: Tasks written off as poison after exhausting their budget.
    quarantined: int = 0
    #: Completed results the cache failed to persist this sweep.
    cache_store_failures: int = 0
    #: Per-task records in spec order (cached and executed alike).
    records: List[TaskRecord] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0


@dataclass
class SweepRunner:
    """Executes task specs serially or across a process pool.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (the default) runs in-process.
    cache:
        A :class:`ResultCache`, or None to recompute everything.
    observer:
        A :class:`SweepObserver` receiving task-lifecycle events.
    profile_dir:
        When set, every executed task dumps a cProfile capture to
        ``<profile_dir>/task-<index>-<digest>.pstats`` (see
        :mod:`repro.obs.profiling` for merging/reporting).
    retry_policy:
        A :class:`~repro.runner.resilience.RetryPolicy`, or None (the
        default) to fail tasks on their first error — the historical
        behavior.
    task_timeout:
        Wall-clock seconds a single task execution may take before its
        worker is killed and the task charged one attempt.  None (the
        default) means no deadline.
    quarantine_dir:
        Directory that receives :class:`~repro.runner.resilience.
        QuarantineRecord` JSON files for poison tasks; None records
        quarantines in stats/observer events only.
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None
    stats: SweepStats = field(default_factory=SweepStats)
    observer: Optional[SweepObserver] = None
    profile_dir: Optional[os.PathLike] = None
    retry_policy: Optional[RetryPolicy] = None
    task_timeout: Optional[float] = None
    quarantine_dir: Optional[os.PathLike] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be > 0 seconds, got {self.task_timeout}"
            )

    def _notify(self, event: str, *args: Any) -> None:
        if self.observer is None:
            return
        try:
            getattr(self.observer, event)(*args)
        except Exception as error:  # noqa: BLE001 - observers must not kill sweeps
            print(
                f"[repro.runner] observer failed on {event} and was disabled:"
                f" {error!r}",
                file=sys.stderr,
            )
            self.observer = None

    def map(self, specs: Sequence[TaskSpec]) -> List[Any]:
        """Run every spec, returning results in spec order.

        When any cell fails, every *other* cell still runs to
        completion (and is stored to the cache) before the
        lowest-index failure is re-raised — ``stats`` is final at that
        point, so callers can inspect the salvage split.
        """
        started = time.perf_counter()
        specs = list(specs)
        results: List[Any] = [None] * len(specs)
        records: List[Optional[TaskRecord]] = [None] * len(specs)
        pending: List[int] = []
        hits = 0
        self._notify("sweep_started", len(specs), self.jobs)
        for index, spec in enumerate(specs):
            if self.cache is not None:
                hit, value = self.cache.lookup(spec)
                if hit:
                    results[index] = value
                    records[index] = TaskRecord(
                        index=index,
                        label=spec.describe(),
                        digest=spec.digest(),
                        cached=True,
                    )
                    hits += 1
                    self._notify("task_cached", index, spec)
                    continue
            pending.append(index)
            self._notify("task_queued", index, spec)

        failures: Dict[int, BaseException] = {}
        profile_dir = str(self.profile_dir) if self.profile_dir is not None else None
        policy = self.retry_policy or RetryPolicy(max_retries=0)
        #: Failed executions so far, per pending index.
        strikes: Dict[int, int] = {index: 0 for index in pending}
        error_log: Dict[int, List[str]] = {}
        counters = {"retried": 0, "quarantined": 0, "store_failures": 0}

        def complete(index: int, value: Any, seconds: float) -> None:
            results[index] = value
            if self.cache is not None and not self.cache.store(specs[index], value):
                counters["store_failures"] += 1
                reason = self.cache.last_store_error or "unknown cache failure"
                self._notify("cache_store_failed", index, specs[index], reason)
            records[index] = TaskRecord(
                index=index,
                label=specs[index].describe(),
                digest=specs[index].digest(),
                seconds=seconds,
                attempts=strikes[index] + 1,
            )
            self._notify("task_finished", index, specs[index], seconds)

        def fail(index: int, error: BaseException) -> None:
            """Permanent failure: budget spent (or none existed)."""
            failures[index] = error
            attempts = max(1, strikes[index])
            # Quarantine what poisoned *infrastructure* (killed workers,
            # blew deadlines) or burned a real retry budget; a plain
            # first-try exception with no policy stays a plain failure.
            quarantined = isinstance(
                error, (TaskTimeoutError, WorkerCrashError)
            ) or (policy.max_retries > 0 and attempts > policy.max_retries)
            if quarantined:
                counters["quarantined"] += 1
                record = QuarantineRecord(
                    digest=specs[index].digest(),
                    label=specs[index].describe(),
                    kind="task",
                    attempts=attempts,
                    reason=f"{type(error).__name__}: {error}",
                    errors=error_log.get(index, [repr(error)]),
                )
                if self.quarantine_dir is not None:
                    record.write(self.quarantine_dir)
                self._notify("task_quarantined", index, specs[index], record)
            records[index] = TaskRecord(
                index=index,
                label=specs[index].describe(),
                digest=specs[index].digest(),
                error=repr(error),
                attempts=attempts,
                quarantined=quarantined,
            )
            self._notify("task_failed", index, specs[index], error)

        def charge(index: int, error: BaseException) -> Optional[float]:
            """One failed execution for ``index``: returns the backoff
            delay when the task gets another try, or None after
            failing it permanently."""
            strikes[index] += 1
            error_log.setdefault(index, []).append(
                f"attempt {strikes[index]}: {error!r}"
            )
            if strikes[index] <= policy.max_retries:
                delay = policy.delay(specs[index].digest(), strikes[index])
                counters["retried"] += 1
                self._notify(
                    "task_retried", index, specs[index], strikes[index], delay, error
                )
                return delay
            fail(index, error)
            return None

        if pending:
            workers = min(self.jobs, len(pending))
            if workers <= 1 and self.task_timeout is None:
                self._run_serial(pending, specs, profile_dir, complete, charge)
            else:
                self._run_pool(
                    max(1, workers), pending, specs, profile_dir, complete, charge
                )

        executed_ok = len(pending) - len(failures)
        self.stats = SweepStats(
            total=len(specs),
            cache_hits=hits,
            executed=len(pending),
            jobs=self.jobs,
            wall_seconds=time.perf_counter() - started,
            salvaged=executed_ok if failures else 0,
            failed=len(failures),
            retried=counters["retried"],
            quarantined=counters["quarantined"],
            cache_store_failures=counters["store_failures"],
            records=[record for record in records if record is not None],
        )
        self._notify("sweep_finished", self.stats)
        if failures:
            raise failures[min(failures)]
        return results

    # ------------------------------------------------------------------
    # execution engines
    # ------------------------------------------------------------------
    def _run_serial(self, pending, specs, profile_dir, complete, charge) -> None:
        """In-process execution with in-process retries (no deadline —
        a hung task cannot be killed without a process boundary)."""
        for index in pending:
            while True:
                self._notify("task_started", index, specs[index])
                try:
                    value, seconds = _execute_task(specs[index], index, profile_dir)
                except Exception as error:  # noqa: BLE001 - salvage contract
                    delay = charge(index, error)
                    if delay is None:
                        break
                    time.sleep(delay)
                    continue
                complete(index, value, seconds)
                break

    def _run_pool(self, workers, pending, specs, profile_dir, complete, charge) -> None:
        """The resilient dispatch loop.

        Submission is throttled to one in-flight task per worker so
        submit time ≈ start time, which makes the wall-clock deadline
        honest (an upfront-submitted task would age in the executor
        queue and get killed before ever running).  The loop survives
        pool breaks — deadline kills it performed itself and
        spontaneous worker deaths alike — by draining the broken
        futures, (re)charging or requeueing their tasks, and respawning
        the pool.
        """
        queue = deque(pending)
        #: Retries backing off: (monotonic not-before, index).
        waiting: List[Tuple[float, int]] = []
        #: In-flight: future -> (index, monotonic deadline or None).
        inflight: Dict[Any, Tuple[int, Optional[float]]] = {}
        #: Indices whose deadline expired; their pool break is a kill
        #: we initiated, so bystander tasks requeue without charge.
        timed_out: Set[int] = set()
        killed_for_timeout = False
        pool_broken = False
        pool = ProcessPoolExecutor(max_workers=workers)

        def kill_workers() -> None:
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.kill()
                except (OSError, AttributeError):
                    pass

        def schedule(index: int, error: BaseException) -> None:
            delay = charge(index, error)
            if delay is not None:
                waiting.append((time.monotonic() + delay, index))

        try:
            while queue or waiting or inflight:
                now = time.monotonic()
                if waiting:
                    due = [entry for entry in waiting if entry[0] <= now]
                    if due:
                        waiting = [e for e in waiting if e[0] > now]
                        queue.extend(index for _, index in sorted(due))
                if pool_broken and not inflight:
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=workers)
                    pool_broken = False
                    killed_for_timeout = False
                    timed_out.clear()
                while queue and len(inflight) < workers and not pool_broken:
                    index = queue.popleft()
                    deadline = (
                        now + self.task_timeout
                        if self.task_timeout is not None
                        else None
                    )
                    try:
                        future = pool.submit(
                            _execute_task, specs[index], index, profile_dir
                        )
                    except (BrokenProcessPool, RuntimeError):
                        pool_broken = True
                        queue.appendleft(index)
                        break
                    inflight[future] = (index, deadline)
                    self._notify("task_started", index, specs[index])
                if not inflight:
                    if waiting and not queue:
                        next_due = min(entry[0] for entry in waiting)
                        time.sleep(max(0.0, next_due - time.monotonic()) + 0.001)
                    continue
                ticks = [
                    deadline
                    for _, deadline in inflight.values()
                    if deadline is not None
                ]
                ticks.extend(entry[0] for entry in waiting)
                timeout = (
                    max(0.0, min(ticks) - time.monotonic()) + 0.005
                    if ticks
                    else None
                )
                done, _ = wait(
                    set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )
                for future in done:
                    index, _ = inflight.pop(future)
                    try:
                        value, seconds = future.result()
                    except CancelledError:
                        queue.append(index)
                    except BrokenProcessPool:
                        pool_broken = True
                        if index in timed_out:
                            timed_out.discard(index)
                            schedule(
                                index,
                                TaskTimeoutError(
                                    f"task {specs[index].describe()!r} exceeded "
                                    f"the {self.task_timeout:g}s deadline and "
                                    "its worker was killed",
                                    digest=specs[index].digest(),
                                ),
                            )
                        elif killed_for_timeout:
                            # Bystander of a kill we initiated: innocent,
                            # requeue without consuming retry budget.
                            queue.append(index)
                        else:
                            # Spontaneous worker death: unattributable,
                            # charge every in-flight task one attempt.
                            schedule(
                                index,
                                WorkerCrashError(
                                    "worker process died while task "
                                    f"{specs[index].describe()!r} was in flight"
                                ),
                            )
                    except Exception as error:  # noqa: BLE001 - salvage contract
                        schedule(index, error)
                    else:
                        complete(index, value, seconds)
                if self.task_timeout is not None and not pool_broken:
                    now = time.monotonic()
                    overdue = [
                        index
                        for _, (index, deadline) in inflight.items()
                        if deadline is not None and now >= deadline
                    ]
                    if overdue:
                        timed_out.update(overdue)
                        killed_for_timeout = True
                        kill_workers()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


def run_tasks(
    specs: Sequence[TaskSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    retry_policy: Optional[RetryPolicy] = None,
    task_timeout: Optional[float] = None,
) -> List[Any]:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        jobs=jobs,
        cache=cache,
        retry_policy=retry_policy,
        task_timeout=task_timeout,
    ).map(specs)
