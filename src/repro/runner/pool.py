"""Sweep execution: fan :class:`TaskSpec` cells out over processes.

``SweepRunner.map`` preserves four invariants the harnesses rely on:

* **Order** — results come back in spec order, whatever order workers
  finish in, so report tables are identical at any ``jobs``.
* **Determinism** — cells are pure functions of their spec (every RNG
  is seeded from spec arguments), so a parallel run is bit-identical
  to a serial one; there is no shared mutable state to race on.
* **Memoization** — with a cache attached, completed cells are looked
  up by ``(task digest, code fingerprint)`` before any process is
  spawned and stored (from the parent, atomically) *as each task
  completes*; a repeat sweep is pure cache replay.
* **Salvage** — a raising (or dying) worker loses only its own cell.
  Every other pending cell still runs and is cached, and only then is
  the failure re-raised (the lowest-index one, so the surfaced error
  is deterministic at any ``jobs``).  ``stats.salvaged`` / ``stats.
  failed`` record the split.

``jobs=1`` executes in-process with no executor, keeping single-cell
debugging (pdb, print, profilers) trivial.  An attached
:class:`SweepObserver` sees every task-lifecycle event (queued /
started / cached / finished / failed) — :mod:`repro.obs` builds the
progress line, heartbeat log and run manifests on top of it — and
``profile_dir`` makes every executed task dump a per-task cProfile
``.pstats`` capture there (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.runner.cache import ResultCache
from repro.runner.spec import TaskSpec


def _execute(spec: TaskSpec) -> Any:
    """Bare worker entry point (module-level, hence picklable)."""
    return spec.run()


def _execute_task(spec: TaskSpec, index: int, profile_dir: Optional[str]) -> Any:
    """Worker entry point: run one cell, timing it (and optionally
    profiling it into ``profile_dir``).  Returns ``(value, seconds)``."""
    start = time.perf_counter()
    if profile_dir is None:
        value = spec.run()
    else:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            value = spec.run()
        finally:
            profiler.disable()
            os.makedirs(profile_dir, exist_ok=True)
            profiler.dump_stats(
                os.path.join(
                    profile_dir, f"task-{index:04d}-{spec.digest()[:12]}.pstats"
                )
            )
    return value, time.perf_counter() - start


def default_jobs() -> int:
    """A sensible ``--jobs`` default: all cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


class SweepObserver:
    """Task-lifecycle hook for :class:`SweepRunner` (all methods no-op).

    Implementations override what they need; every callback fires in
    the *coordinating* process, in wall-clock order.  ``task_started``
    means "handed to a worker" when ``jobs > 1`` (the parent cannot see
    inside the pool) and "about to run in-process" at ``jobs = 1``.
    Observer exceptions never fail a sweep: the first one disables the
    observer for the remainder of the run (with a warning on stderr).
    """

    def sweep_started(self, total: int, jobs: int) -> None:
        """A ``map`` call began: ``total`` specs over ``jobs`` workers."""

    def task_queued(self, index: int, spec: TaskSpec) -> None:
        """Spec ``index`` missed the cache and will execute."""

    def task_cached(self, index: int, spec: TaskSpec) -> None:
        """Spec ``index`` was served from the result cache."""

    def task_started(self, index: int, spec: TaskSpec) -> None:
        """Spec ``index`` was handed to a worker (or runs in-process)."""

    def task_finished(self, index: int, spec: TaskSpec, seconds: float) -> None:
        """Spec ``index`` completed in ``seconds`` (worker-measured)."""

    def task_failed(self, index: int, spec: TaskSpec, error: BaseException) -> None:
        """Spec ``index`` raised (or its worker died)."""

    def sweep_finished(self, stats: "SweepStats") -> None:
        """The ``map`` call is over; ``stats`` is final."""


@dataclass
class TaskRecord:
    """Per-task outcome of the most recent sweep (telemetry payload)."""

    index: int
    label: str
    digest: str
    cached: bool = False
    seconds: Optional[float] = None
    error: Optional[str] = None


@dataclass
class SweepStats:
    """Counters for the most recent :meth:`SweepRunner.map` call."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0
    #: Tasks that completed (and were cached) in a sweep that also had
    #: failures — the results a crashing worker did *not* take down.
    salvaged: int = 0
    failed: int = 0
    #: Per-task records in spec order (cached and executed alike).
    records: List[TaskRecord] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0


@dataclass
class SweepRunner:
    """Executes task specs serially or across a process pool.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (the default) runs in-process.
    cache:
        A :class:`ResultCache`, or None to recompute everything.
    observer:
        A :class:`SweepObserver` receiving task-lifecycle events.
    profile_dir:
        When set, every executed task dumps a cProfile capture to
        ``<profile_dir>/task-<index>-<digest>.pstats`` (see
        :mod:`repro.obs.profiling` for merging/reporting).
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None
    stats: SweepStats = field(default_factory=SweepStats)
    observer: Optional[SweepObserver] = None
    profile_dir: Optional[os.PathLike] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")

    def _notify(self, event: str, *args: Any) -> None:
        if self.observer is None:
            return
        try:
            getattr(self.observer, event)(*args)
        except Exception as error:  # noqa: BLE001 - observers must not kill sweeps
            print(
                f"[repro.runner] observer failed on {event} and was disabled:"
                f" {error!r}",
                file=sys.stderr,
            )
            self.observer = None

    def map(self, specs: Sequence[TaskSpec]) -> List[Any]:
        """Run every spec, returning results in spec order.

        When any cell fails, every *other* cell still runs to
        completion (and is stored to the cache) before the
        lowest-index failure is re-raised — ``stats`` is final at that
        point, so callers can inspect the salvage split.
        """
        started = time.perf_counter()
        specs = list(specs)
        results: List[Any] = [None] * len(specs)
        records: List[Optional[TaskRecord]] = [None] * len(specs)
        pending: List[int] = []
        hits = 0
        self._notify("sweep_started", len(specs), self.jobs)
        for index, spec in enumerate(specs):
            if self.cache is not None:
                hit, value = self.cache.lookup(spec)
                if hit:
                    results[index] = value
                    records[index] = TaskRecord(
                        index=index,
                        label=spec.describe(),
                        digest=spec.digest(),
                        cached=True,
                    )
                    hits += 1
                    self._notify("task_cached", index, spec)
                    continue
            pending.append(index)
            self._notify("task_queued", index, spec)

        failures: Dict[int, BaseException] = {}
        profile_dir = str(self.profile_dir) if self.profile_dir is not None else None

        def complete(index: int, value: Any, seconds: float) -> None:
            results[index] = value
            if self.cache is not None:
                self.cache.store(specs[index], value)
            records[index] = TaskRecord(
                index=index,
                label=specs[index].describe(),
                digest=specs[index].digest(),
                seconds=seconds,
            )
            self._notify("task_finished", index, specs[index], seconds)

        def fail(index: int, error: BaseException) -> None:
            failures[index] = error
            records[index] = TaskRecord(
                index=index,
                label=specs[index].describe(),
                digest=specs[index].digest(),
                error=repr(error),
            )
            self._notify("task_failed", index, specs[index], error)

        if pending:
            workers = min(self.jobs, len(pending))
            if workers <= 1:
                for index in pending:
                    self._notify("task_started", index, specs[index])
                    try:
                        value, seconds = _execute_task(
                            specs[index], index, profile_dir
                        )
                    except Exception as error:  # noqa: BLE001 - salvage contract
                        fail(index, error)
                        continue
                    complete(index, value, seconds)
            else:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {}
                    for index in pending:
                        futures[
                            pool.submit(_execute_task, specs[index], index, profile_dir)
                        ] = index
                        self._notify("task_started", index, specs[index])
                    # Incremental drain: store each result the moment its
                    # future completes, so a later worker crash cannot
                    # discard work already done (the salvage bugfix).
                    outstanding = set(futures)
                    while outstanding:
                        done, outstanding = wait(
                            outstanding, return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            index = futures[future]
                            try:
                                value, seconds = future.result()
                            except Exception as error:  # noqa: BLE001
                                fail(index, error)
                                continue
                            complete(index, value, seconds)

        executed_ok = len(pending) - len(failures)
        self.stats = SweepStats(
            total=len(specs),
            cache_hits=hits,
            executed=len(pending),
            jobs=self.jobs,
            wall_seconds=time.perf_counter() - started,
            salvaged=executed_ok if failures else 0,
            failed=len(failures),
            records=[record for record in records if record is not None],
        )
        self._notify("sweep_finished", self.stats)
        if failures:
            raise failures[min(failures)]
        return results


def run_tasks(
    specs: Sequence[TaskSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Any]:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(jobs=jobs, cache=cache).map(specs)
