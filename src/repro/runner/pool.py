"""Sweep execution: fan :class:`TaskSpec` cells out over processes.

``SweepRunner.map`` preserves three invariants the harnesses rely on:

* **Order** — results come back in spec order, whatever order workers
  finish in, so report tables are identical at any ``jobs``.
* **Determinism** — cells are pure functions of their spec (every RNG
  is seeded from spec arguments), so a parallel run is bit-identical
  to a serial one; there is no shared mutable state to race on.
* **Memoization** — with a cache attached, completed cells are looked
  up by ``(task digest, code fingerprint)`` before any process is
  spawned and stored (from the parent, atomically) after execution;
  a repeat sweep is pure cache replay.

``jobs=1`` executes in-process with no executor, keeping single-cell
debugging (pdb, print, profilers) trivial.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.runner.cache import ResultCache
from repro.runner.spec import TaskSpec


def _execute(spec: TaskSpec) -> Any:
    """Worker entry point (module-level, hence picklable)."""
    return spec.run()


def default_jobs() -> int:
    """A sensible ``--jobs`` default: all cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


@dataclass
class SweepStats:
    """Counters for the most recent :meth:`SweepRunner.map` call."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0


@dataclass
class SweepRunner:
    """Executes task specs serially or across a process pool.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (the default) runs in-process.
    cache:
        A :class:`ResultCache`, or None to recompute everything.
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None
    stats: SweepStats = field(default_factory=SweepStats)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")

    def map(self, specs: Sequence[TaskSpec]) -> List[Any]:
        """Run every spec, returning results in spec order."""
        started = time.perf_counter()
        specs = list(specs)
        results: List[Any] = [None] * len(specs)
        pending: List[int] = []
        hits = 0
        for index, spec in enumerate(specs):
            if self.cache is not None:
                hit, value = self.cache.lookup(spec)
                if hit:
                    results[index] = value
                    hits += 1
                    continue
            pending.append(index)

        if pending:
            workers = min(self.jobs, len(pending))
            if workers <= 1:
                for index in pending:
                    results[index] = specs[index].run()
            else:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    for index, value in zip(
                        pending, pool.map(_execute, [specs[i] for i in pending])
                    ):
                        results[index] = value
            if self.cache is not None:
                for index in pending:
                    self.cache.store(specs[index], results[index])

        self.stats = SweepStats(
            total=len(specs),
            cache_hits=hits,
            executed=len(pending),
            jobs=self.jobs,
            wall_seconds=time.perf_counter() - started,
        )
        return results


def run_tasks(
    specs: Sequence[TaskSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Any]:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(jobs=jobs, cache=cache).map(specs)
