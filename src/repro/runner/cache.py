"""On-disk content-addressed result cache for sweep cells.

Layout::

    <root>/                      default .repro-cache/ (REPRO_CACHE_DIR
      <fingerprint[:16]>/          overrides), one dir per code version
        <task digest>.pkl          pickled {"canonical": ..., "result": ...}

A lookup is ``(code fingerprint, task digest) -> pickle``; a miss after
an edit to ``src/repro`` is therefore automatic (new fingerprint, new
directory) and stale entries are simply orphaned directories you can
delete wholesale.  Writes are atomic (tmp file + ``os.replace``) so a
crashed or concurrent run never leaves a torn entry; the stored
canonical string is re-checked on load to turn any (astronomically
unlikely) digest collision into a miss instead of a wrong answer.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

from repro.runner.fingerprint import code_fingerprint
from repro.runner.spec import TaskSpec

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"

#: Sentinel distinguishing "miss" from a legitimately-None result.
_MISS = object()


class ResultCache:
    """Memoizes completed :class:`TaskSpec` results on disk."""

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        fingerprint: Optional[str] = None,
    ):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0

    def _path(self, spec: TaskSpec) -> Path:
        return self.root / self.fingerprint[:16] / f"{spec.digest()}.pkl"

    def lookup(self, spec: TaskSpec) -> Tuple[bool, Any]:
        """``(True, result)`` on a hit, ``(False, None)`` on a miss."""
        path = self._path(spec)
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            self.misses += 1
            return False, None
        if payload.get("canonical") != spec.canonical():
            self.misses += 1
            return False, None
        self.hits += 1
        return True, payload["result"]

    def store(self, spec: TaskSpec, result: Any) -> bool:
        """Persist ``result``; returns False (and caches nothing) when
        the result does not pickle, so exotic cells degrade to
        recompute-every-time instead of failing the sweep."""
        path = self._path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            blob = pickle.dumps({"canonical": spec.canonical(), "result": result})
        except (pickle.PickleError, TypeError, AttributeError):
            return False
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return False
        return True

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
