"""On-disk content-addressed result cache for sweep cells.

Layout::

    <root>/                      default .repro-cache/ (REPRO_CACHE_DIR
      <fingerprint[:16]>/          overrides), one dir per code version
        <task digest>.pkl          checksum-framed pickled entry
      quarantine/                  corrupt entries, moved aside on read

A lookup is ``(code fingerprint, task digest) -> pickle``; a miss after
an edit to ``src/repro`` is therefore automatic (new fingerprint, new
directory) and stale entries are simply orphaned directories you can
delete wholesale.  Writes are atomic (tmp file + ``os.replace``) so a
crashed or concurrent run never leaves a torn entry; the stored
canonical string is re-checked on load to turn any (astronomically
unlikely) digest collision into a miss instead of a wrong answer.

**Integrity framing** (since the resilience layer): every entry is
``<magic line>\\n<blake2b hex>\\n<pickle blob>``, and the checksum is
verified before any byte is unpickled.  A truncated or bit-flipped
entry is a miss — and the bad file is *quarantined* (moved under
``<root>/quarantine/`` with a :class:`~repro.runner.resilience.
QuarantineRecord` sidecar) on first read, so one corrupt file cannot
silently re-poison every subsequent sweep.  ``python -m
repro.experiments fsck`` sweeps the whole tree with the same check
(see docs/RESILIENCE.md).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

from repro.runner.fingerprint import code_fingerprint
from repro.runner.resilience import QUARANTINE_SUBDIR, QuarantineRecord
from repro.runner.spec import TaskSpec

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"

#: First line of every framed cache entry; bump the suffix on
#: incompatible framing changes (old entries then read as foreign and
#: miss without being quarantined).
CACHE_MAGIC = b"repro-cache:1"

#: Sentinel distinguishing "miss" from a legitimately-None result.
_MISS = object()


def _checksum(blob: bytes) -> str:
    return hashlib.blake2b(blob, digest_size=32).hexdigest()


def frame_entry(blob: bytes) -> bytes:
    """Wrap a pickle blob in the checksum frame."""
    return CACHE_MAGIC + b"\n" + _checksum(blob).encode("ascii") + b"\n" + blob


def unframe_entry(data: bytes) -> bytes:
    """Verify the frame and return the pickle blob.

    Raises ``ValueError`` with a human-readable reason on any
    violation: missing/foreign magic, torn header, checksum mismatch.
    """
    magic, sep, rest = data.partition(b"\n")
    if not sep or magic != CACHE_MAGIC:
        raise ValueError(
            "unframed or foreign cache entry "
            f"(magic {magic[:32]!r}, expected {CACHE_MAGIC!r})"
        )
    checksum, sep, blob = rest.partition(b"\n")
    if not sep:
        raise ValueError("torn cache entry header (no checksum line)")
    if _checksum(blob).encode("ascii") != checksum:
        raise ValueError(
            "cache entry checksum mismatch — truncated or bit-flipped payload"
        )
    return blob


class ResultCache:
    """Memoizes completed :class:`TaskSpec` results on disk."""

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        fingerprint: Optional[str] = None,
    ):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        #: Corrupt entries quarantined by :meth:`lookup` this session.
        self.corrupt = 0
        #: Failed :meth:`store` calls this session (unpicklable result
        #: or I/O error); the first one also warns on stderr.
        self.store_failures = 0
        #: Human-readable reason of the most recent :meth:`store`
        #: failure (heartbeat/telemetry payload), or None.
        self.last_store_error: Optional[str] = None

    def _path(self, spec: TaskSpec) -> Path:
        return self.root / self.fingerprint[:16] / f"{spec.digest()}.pkl"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_SUBDIR

    def _quarantine(self, path: Path, digest: str, reason: str) -> None:
        """Move a corrupt entry aside (never delete evidence) and leave
        a structured record next to it.  Best-effort: a failure to
        quarantine must not fail the lookup that found the corruption."""
        self.corrupt += 1
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
            QuarantineRecord(
                digest=digest,
                label=str(path),
                kind="cache-entry",
                reason=reason,
                path=str(self.quarantine_dir / path.name),
            ).write(self.quarantine_dir)
        except OSError:
            # Last resort: at least stop the bad file from being
            # re-read every sweep.
            try:
                os.unlink(path)
            except OSError:
                pass

    def lookup(self, spec: TaskSpec) -> Tuple[bool, Any]:
        """``(True, result)`` on a hit, ``(False, None)`` on a miss.

        A corrupt or truncated entry is a miss *and is quarantined on
        the spot* — the old behavior of leaving the bad file to be
        re-read (and re-missed) by every subsequent sweep is gone.
        """
        path = self._path(spec)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return False, None
        try:
            blob = unframe_entry(data)
            payload = pickle.loads(blob)
        except (ValueError, pickle.PickleError, EOFError, AttributeError,
                IndexError, ImportError, MemoryError) as error:
            self._quarantine(path, spec.digest(), repr(error))
            self.misses += 1
            return False, None
        if not isinstance(payload, dict) or payload.get("canonical") != spec.canonical():
            self.misses += 1
            return False, None
        self.hits += 1
        return True, payload["result"]

    def store(self, spec: TaskSpec, result: Any) -> bool:
        """Persist ``result``; returns False (and caches nothing) when
        the result does not pickle or the write fails, so exotic cells
        degrade to recompute-every-time instead of failing the sweep.

        A failure is *not* silent: the first one per cache instance
        warns on stderr, every one increments :attr:`store_failures`
        and records :attr:`last_store_error`, and the sweep runner
        surfaces a ``cache_store_failed`` heartbeat event (see
        docs/RESILIENCE.md).
        """
        path = self._path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            blob = pickle.dumps({"canonical": spec.canonical(), "result": result})
        except (pickle.PickleError, TypeError, AttributeError) as error:
            self._store_failed(spec, f"result does not pickle: {error!r}")
            return False
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(frame_entry(blob))
            os.replace(tmp_name, path)
        except OSError as error:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            self._store_failed(spec, f"cache write failed: {error!r}")
            return False
        return True

    def _store_failed(self, spec: TaskSpec, reason: str) -> None:
        first = self.store_failures == 0
        self.store_failures += 1
        self.last_store_error = reason
        if first:
            print(
                f"[repro.runner] result cache store failed for "
                f"{spec.describe()!r} — caching is degraded for this run "
                f"({reason}); further failures are counted silently",
                file=sys.stderr,
            )

    @staticmethod
    def verify_entry(path: os.PathLike) -> None:
        """Integrity-check one on-disk entry without returning its
        result (the ``fsck`` primitive).  Raises ``ValueError`` on a
        framing/checksum violation or an unpicklable/shapeless payload.
        """
        data = Path(path).read_bytes()
        blob = unframe_entry(data)
        try:
            payload = pickle.loads(blob)
        except Exception as error:  # noqa: BLE001 - any unpickle failure is corruption
            raise ValueError(f"cache entry does not unpickle: {error!r}") from error
        if not isinstance(payload, dict) or "canonical" not in payload:
            raise ValueError("cache entry payload has the wrong shape")

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
