"""Parallel sweep execution with deterministic result caching.

The experiment layer describes each simulation cell as a
:class:`TaskSpec` (a named top-level callable plus picklable,
canonically-hashable arguments), and a :class:`SweepRunner` fans the
cells out over a process pool and/or replays them from an on-disk
:class:`ResultCache` keyed by ``(task digest, code fingerprint)``.
See docs/PERFORMANCE.md for the architecture and guarantees.
"""

from repro.runner.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR, ResultCache
from repro.runner.fingerprint import code_fingerprint, package_root
from repro.runner.pool import (
    SweepObserver,
    SweepRunner,
    SweepStats,
    TaskRecord,
    default_jobs,
    run_tasks,
)
from repro.runner.spec import TaskSpec, canonicalize, resolve
from repro.runner.warmstart import (
    PREFIX_INDEX_SUBDIR,
    PrefixSpec,
    SNAPSHOT_SUBDIR,
    SnapshotStore,
    step_until,
    warm_specs,
)

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "PREFIX_INDEX_SUBDIR",
    "PrefixSpec",
    "ResultCache",
    "SNAPSHOT_SUBDIR",
    "SnapshotStore",
    "SweepObserver",
    "SweepRunner",
    "SweepStats",
    "TaskRecord",
    "TaskSpec",
    "canonicalize",
    "code_fingerprint",
    "default_jobs",
    "package_root",
    "resolve",
    "run_tasks",
    "step_until",
    "warm_specs",
]
