"""Parallel sweep execution with deterministic result caching.

The experiment layer describes each simulation cell as a
:class:`TaskSpec` (a named top-level callable plus picklable,
canonically-hashable arguments), and a :class:`SweepRunner` fans the
cells out over a process pool and/or replays them from an on-disk
:class:`ResultCache` keyed by ``(task digest, code fingerprint)``.
See docs/PERFORMANCE.md for the architecture and guarantees, and
docs/RESILIENCE.md for the fault-tolerance layer (:class:`RetryPolicy`,
task deadlines, quarantine, storage self-healing and ``fsck``).
"""

from repro.runner.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR, ResultCache
from repro.runner.fingerprint import code_fingerprint, package_root
from repro.runner.fsck import FsckIssue, FsckReport, fsck
from repro.runner.pool import (
    SweepObserver,
    SweepRunner,
    SweepStats,
    TaskRecord,
    default_jobs,
    run_tasks,
)
from repro.runner.resilience import (
    QUARANTINE_SUBDIR,
    QuarantineRecord,
    RetryPolicy,
    read_quarantine,
)
from repro.runner.spec import TaskSpec, canonicalize, resolve, uncanonicalize
from repro.runner.warmstart import (
    PREFIX_INDEX_SUBDIR,
    PREFIX_META_SUBDIR,
    PrefixSpec,
    SNAPSHOT_SUBDIR,
    SnapshotStore,
    WarmStartDecision,
    fetch_prefix,
    load_prefix,
    step_until,
    warm_specs,
    warm_start_decision,
)

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "FsckIssue",
    "FsckReport",
    "PREFIX_INDEX_SUBDIR",
    "PREFIX_META_SUBDIR",
    "PrefixSpec",
    "QUARANTINE_SUBDIR",
    "QuarantineRecord",
    "ResultCache",
    "RetryPolicy",
    "SNAPSHOT_SUBDIR",
    "SnapshotStore",
    "SweepObserver",
    "SweepRunner",
    "SweepStats",
    "TaskRecord",
    "TaskSpec",
    "WarmStartDecision",
    "canonicalize",
    "code_fingerprint",
    "default_jobs",
    "fetch_prefix",
    "fsck",
    "load_prefix",
    "package_root",
    "read_quarantine",
    "resolve",
    "run_tasks",
    "step_until",
    "uncanonicalize",
    "warm_specs",
    "warm_start_decision",
]
