"""Code fingerprint: one hash over everything that defines a result.

The result cache keys every entry by ``(task digest, code
fingerprint)`` so that *any* source edit invalidates *all* cached
results — coarse, but safe: a cached cell can never survive a change
to the code that produced it, and an unrelated edit elsewhere on the
machine (docs, most tests, scripts) costs nothing because only the
inputs below participate:

* every ``*.py`` under the installed ``repro`` package, hashed as
  ``relative-path + NUL + content`` pairs in sorted path order (so
  both renames and edits change the fingerprint);
* the snapshot/digest format constants (``SNAPSHOT_FORMAT``,
  ``DELTA_FORMAT``, ``DIGEST_VERSION``) — warm-started cells embed
  snapshot digests, and a format bump changes what those digests mean
  even when no ``repro`` source under the walk changed (e.g. an
  editable install pointing at a different checkout);
* the committed golden state digests
  (``tests/golden/state_digests.json``), when present — refreshing the
  goldens via ``scripts/update_golden.py`` declares "behaviour
  intentionally changed", and stale cached rows must not outlive that
  declaration;
* the committed behavior-class reference model
  (``repro/ident/reference_model.json``) — identification verdicts
  cached by sweep cells depend on the model bytes, and the model is
  data, not a ``*.py`` file the walk would catch.

Computing the fingerprint costs a few milliseconds; it is memoized per
process.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional

_CACHE: dict = {}


def package_root() -> Path:
    """Directory of the installed ``repro`` package (``src/repro``)."""
    return Path(__file__).resolve().parents[1]


def golden_digests_path(root: Optional[Path] = None) -> Path:
    """The committed golden-state digests for the checkout ``root``
    belongs to (``<repo>/tests/golden/state_digests.json``)."""
    root = Path(root) if root is not None else package_root()
    return root.resolve().parents[1] / "tests" / "golden" / "state_digests.json"


def code_fingerprint(root: Optional[Path] = None) -> str:
    """SHA-256 over the cache-relevant inputs (see module docstring)."""
    root = Path(root) if root is not None else package_root()
    key = str(root)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    # Imported lazily: repro.snapshot pulls in experiment modules for
    # the golden scenarios, which in turn import repro.runner.
    from repro.snapshot import DELTA_FORMAT, DIGEST_VERSION, SNAPSHOT_FORMAT

    digest.update(
        f"formats:{SNAPSHOT_FORMAT}.{DELTA_FORMAT}.{DIGEST_VERSION}".encode("utf-8")
    )
    digest.update(b"\0")
    golden = golden_digests_path(root)
    if golden.exists():
        digest.update(b"golden\0")
        digest.update(golden.read_bytes())
        digest.update(b"\0")
    reference_model = root / "ident" / "reference_model.json"
    if reference_model.exists():
        digest.update(b"ident-model\0")
        digest.update(reference_model.read_bytes())
        digest.update(b"\0")
    result = digest.hexdigest()
    _CACHE[key] = result
    return result
