"""Code fingerprint: one hash over the whole ``repro`` source tree.

The result cache keys every entry by ``(task digest, code
fingerprint)`` so that *any* source edit invalidates *all* cached
results — coarse, but safe: a cached cell can never survive a change
to the code that produced it, and an unrelated edit elsewhere on the
machine (docs, tests, scripts) costs nothing because only files under
the installed ``repro`` package participate.

The walk hashes every ``*.py`` under the package root as
``relative-path + NUL + content`` pairs in sorted path order, so both
renames and edits change the fingerprint.  Computing it costs a few
milliseconds; it is memoized per process.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional

_CACHE: dict = {}


def package_root() -> Path:
    """Directory of the installed ``repro`` package (``src/repro``)."""
    return Path(__file__).resolve().parents[1]


def code_fingerprint(root: Optional[Path] = None) -> str:
    """SHA-256 over every ``*.py`` below ``root`` (default: ``repro``)."""
    root = Path(root) if root is not None else package_root()
    key = str(root)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    result = digest.hexdigest()
    _CACHE[key] = result
    return result
