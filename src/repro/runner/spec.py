"""Serializable descriptions of one simulation cell.

A :class:`TaskSpec` names a module-level callable by dotted path plus
the arguments to call it with.  Two properties make the whole sweep
layer work:

* **Picklable** — the spec (not a closure) crosses the process
  boundary, so any harness cell that is a top-level function of
  picklable arguments can fan out over a worker pool unchanged.
* **Canonically hashable** — :meth:`TaskSpec.digest` is a stable
  SHA-256 over a canonical JSON encoding of the call (dataclass
  configs included, field by field), so a spec is usable as a
  content-address for its result.  Equal work -> equal digest,
  regardless of which process, session or argument spelling
  (tuple vs list) produced it.

Determinism contract: a spec must describe a *pure* cell — every
random draw inside the callable must derive from arguments captured in
the spec (seeds, configs).  All harness cells in
:mod:`repro.experiments` satisfy this, which is why ``--jobs 4`` is
bit-identical to ``--jobs 1``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from repro.errors import ConfigurationError


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to JSON-encodable primitives, deterministically.

    Dataclass instances become tagged dicts (type name + per-field
    canonical values), sequences become lists, mappings are key-sorted.
    Anything else (callables, open handles, live simulators) is
    rejected: if it cannot be named, it cannot be hashed honestly.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: canonicalize(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(canonicalize(item) for item in value)}
    if isinstance(value, dict):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"task-spec dict keys must be strings, got {key!r}"
                )
            out[key] = canonicalize(value[key])
        return out
    raise ConfigurationError(
        f"cannot canonicalize {type(value).__name__!r} for a task spec; "
        "specs may only carry primitives, sequences, mappings and dataclasses"
    )


def uncanonicalize(value: Any) -> Any:
    """Rebuild a live value from its :func:`canonicalize` encoding.

    The inverse, up to canonical equivalence: tagged dataclass dicts
    are re-instantiated (the class is imported by its recorded dotted
    name), ``__set__`` tags become sets, and JSON arrays come back as
    lists (tuples canonicalize to the same JSON, so the round-tripped
    value has the same digest even when the original held tuples).
    Used by the storage self-healing path to re-run a prefix spec whose
    snapshot went missing or corrupt — see
    :func:`repro.runner.warmstart.load_prefix`.
    """
    if isinstance(value, dict):
        if "__dataclass__" in value and "fields" in value:
            dotted = value["__dataclass__"]
            # ``module.qualname`` where both halves may contain dots
            # (packages / nested classes): import the longest prefix
            # that is a module, getattr the rest.
            parts = dotted.split(".")
            target: Any = None
            for split in range(len(parts) - 1, 0, -1):
                try:
                    target = importlib.import_module(".".join(parts[:split]))
                except ImportError:
                    continue
                for part in parts[split:]:
                    target = getattr(target, part)
                break
            if target is None:
                raise ConfigurationError(f"cannot import dataclass {dotted!r}")
            kwargs = {
                name: uncanonicalize(child)
                for name, child in value["fields"].items()
            }
            try:
                return target(**kwargs)
            except TypeError as exc:
                raise ConfigurationError(
                    f"cannot rebuild {dotted!r} from canonical fields: {exc}"
                ) from exc
        if "__set__" in value and len(value) == 1:
            return {uncanonicalize(item) for item in value["__set__"]}
        return {key: uncanonicalize(child) for key, child in value.items()}
    if isinstance(value, list):
        return [uncanonicalize(item) for item in value]
    return value


def resolve(path: str) -> Callable[..., Any]:
    """Import the callable named by ``"package.module:attr"``."""
    module_name, _, attr = path.partition(":")
    if not attr:
        raise ConfigurationError(
            f"task-spec fn must look like 'module:callable', got {path!r}"
        )
    target: Any = importlib.import_module(module_name)
    for part in attr.split("."):
        target = getattr(target, part)
    return target


@dataclass
class TaskSpec:
    """One unit of sweep work: ``resolve(fn)(*args, **kwargs)``.

    ``label`` is cosmetic (progress lines, cache debugging) and is
    excluded from the digest.
    """

    fn: str
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        self.args = tuple(self.args)

    def canonical(self) -> str:
        """The canonical JSON encoding of this call (digest preimage)."""
        payload = {
            "fn": self.fn,
            "args": canonicalize(self.args),
            "kwargs": canonicalize(self.kwargs),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Stable SHA-256 content address of the call."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    @classmethod
    def from_canonical(cls, text: str, label: str = "") -> "TaskSpec":
        """Rebuild a spec from its :meth:`canonical` JSON encoding.

        Round-trip safe: the rebuilt spec's :meth:`canonical` equals
        ``text`` (tuples come back as lists, which canonicalize
        identically), so its digest — and therefore its cache and
        prefix-index identity — is unchanged.  Raises
        :class:`~repro.errors.ConfigurationError` when the encoding
        does not parse or names an unimportable dataclass.
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"canonical task spec does not parse as JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict) or "fn" not in payload:
            raise ConfigurationError(
                "canonical task spec must be an object with an 'fn' key"
            )
        spec = cls(
            fn=payload["fn"],
            args=tuple(uncanonicalize(payload.get("args", []) or [])),
            kwargs=uncanonicalize(payload.get("kwargs", {}) or {}),
            label=label,
        )
        if spec.canonical() != text:
            raise ConfigurationError(
                "canonical task spec did not round-trip — the encoding "
                "drifted or the file was edited by hand"
            )
        return spec

    def run(self) -> Any:
        """Execute the cell in the current process."""
        return resolve(self.fn)(*self.args, **self.kwargs)

    def describe(self) -> str:
        return self.label or f"{self.fn}({len(self.args)} args)"

    def __hash__(self) -> int:  # usable as a dict key for result routing
        return hash(self.digest())
