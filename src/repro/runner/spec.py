"""Serializable descriptions of one simulation cell.

A :class:`TaskSpec` names a module-level callable by dotted path plus
the arguments to call it with.  Two properties make the whole sweep
layer work:

* **Picklable** — the spec (not a closure) crosses the process
  boundary, so any harness cell that is a top-level function of
  picklable arguments can fan out over a worker pool unchanged.
* **Canonically hashable** — :meth:`TaskSpec.digest` is a stable
  SHA-256 over a canonical JSON encoding of the call (dataclass
  configs included, field by field), so a spec is usable as a
  content-address for its result.  Equal work -> equal digest,
  regardless of which process, session or argument spelling
  (tuple vs list) produced it.

Determinism contract: a spec must describe a *pure* cell — every
random draw inside the callable must derive from arguments captured in
the spec (seeds, configs).  All harness cells in
:mod:`repro.experiments` satisfy this, which is why ``--jobs 4`` is
bit-identical to ``--jobs 1``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from repro.errors import ConfigurationError


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to JSON-encodable primitives, deterministically.

    Dataclass instances become tagged dicts (type name + per-field
    canonical values), sequences become lists, mappings are key-sorted.
    Anything else (callables, open handles, live simulators) is
    rejected: if it cannot be named, it cannot be hashed honestly.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: canonicalize(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(canonicalize(item) for item in value)}
    if isinstance(value, dict):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"task-spec dict keys must be strings, got {key!r}"
                )
            out[key] = canonicalize(value[key])
        return out
    raise ConfigurationError(
        f"cannot canonicalize {type(value).__name__!r} for a task spec; "
        "specs may only carry primitives, sequences, mappings and dataclasses"
    )


def resolve(path: str) -> Callable[..., Any]:
    """Import the callable named by ``"package.module:attr"``."""
    module_name, _, attr = path.partition(":")
    if not attr:
        raise ConfigurationError(
            f"task-spec fn must look like 'module:callable', got {path!r}"
        )
    target: Any = importlib.import_module(module_name)
    for part in attr.split("."):
        target = getattr(target, part)
    return target


@dataclass
class TaskSpec:
    """One unit of sweep work: ``resolve(fn)(*args, **kwargs)``.

    ``label`` is cosmetic (progress lines, cache debugging) and is
    excluded from the digest.
    """

    fn: str
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        self.args = tuple(self.args)

    def canonical(self) -> str:
        """The canonical JSON encoding of this call (digest preimage)."""
        payload = {
            "fn": self.fn,
            "args": canonicalize(self.args),
            "kwargs": canonicalize(self.kwargs),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Stable SHA-256 content address of the call."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    def run(self) -> Any:
        """Execute the cell in the current process."""
        return resolve(self.fn)(*self.args, **self.kwargs)

    def describe(self) -> str:
        return self.label or f"{self.fn}({len(self.args)} args)"

    def __hash__(self) -> int:  # usable as a dict key for result routing
        return hash(self.digest())
