"""Fault tolerance for sweep execution: retry policy + quarantine.

The paper's thesis — recovery must survive adversarial loss patterns
without collapsing — applies to the harness too.  This module holds
the two policy objects the :class:`~repro.runner.pool.SweepRunner`
dispatch loop uses to survive its own failures:

* :class:`RetryPolicy` — bounded per-task retries with *deterministic*
  seeded, jittered exponential backoff.  The jitter for attempt ``k``
  of a task is derived from the task digest (the same content address
  the result cache keys on), not from a process RNG or the wall clock,
  so a retry schedule is a pure function of the work being retried:
  parallel and serial sweeps back off identically, and a re-run of a
  flaky sweep reproduces its own timing envelope.  (Karn's lesson from
  divergent retransmission timers: ad-hoc timer state is where
  determinism quietly dies.)
* :class:`QuarantineRecord` — the structured artifact left behind when
  a task exhausts its budget (or keeps killing workers / overrunning
  its deadline): spec digest, label, per-attempt tracebacks, and the
  reason, written as JSON into the run artifact directory so a
  quarantined cell is an inspectable report instead of a wedged
  campaign.

Cells are pure functions of their spec (every RNG seeds from spec
arguments), so a retried-then-succeeded cell returns a result
bit-identical to a first-try run — retries change *when* work
happens, never *what* it computes.  ``tests/resilience/`` proves this
under SIGKILL, deadline kills and storage corruption.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError

#: Subdirectory (of a run's artifact dir) holding quarantine records.
QUARANTINE_SUBDIR = "quarantine"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry schedule for sweep tasks.

    Parameters
    ----------
    max_retries:
        Additional executions after the first (``0`` disables retry).
    base_delay:
        Backoff before the first retry, in seconds; retry ``k`` waits
        ``base_delay * 2**(k-1)`` scaled by jitter, capped at
        ``max_delay``.
    max_delay:
        Hard ceiling on any single backoff.
    jitter:
        Fractional spread of the multiplicative jitter: the factor for
        (digest, attempt) is uniform in ``[1-jitter, 1+jitter]``,
        derived from ``sha256(digest:attempt)`` — deterministic, but
        decorrelated across tasks so a broken pool's retries do not
        thunder back in lockstep.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("retry delays must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def jitter_factor(self, digest: str, attempt: int) -> float:
        """The deterministic jitter multiplier for (task, attempt)."""
        if self.jitter == 0.0:
            return 1.0
        seed = hashlib.sha256(f"{digest}:{attempt}".encode("ascii")).digest()
        # 8 bytes -> uniform in [0, 1), then into [1-jitter, 1+jitter].
        unit = int.from_bytes(seed[:8], "big") / 2**64
        return 1.0 - self.jitter + 2.0 * self.jitter * unit

    def delay(self, digest: str, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based) of the
        task addressed by ``digest``.  Pure function of its arguments.
        """
        if attempt < 1:
            raise ConfigurationError(f"retry attempt must be >= 1, got {attempt}")
        raw = self.base_delay * (2.0 ** (attempt - 1))
        return min(self.max_delay, raw * self.jitter_factor(digest, attempt))

    def schedule(self, digest: str) -> List[float]:
        """Every backoff the policy would apply to this task, in order
        — the full (deterministic) retry timetable."""
        return [self.delay(digest, k) for k in range(1, self.max_retries + 1)]


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass
class QuarantineRecord:
    """One poisoned artifact, written out instead of wedging a sweep.

    ``kind`` is ``"task"`` for a quarantined sweep cell, or
    ``"cache-entry"`` / ``"snapshot"`` / ``"delta"`` / ``"prefix-index"``
    for storage entries quarantined by the integrity layer (corrupt
    reads, ``fsck``).  ``errors`` carries one traceback/description per
    failed attempt, oldest first.
    """

    digest: str
    label: str = ""
    kind: str = "task"
    attempts: int = 0
    reason: str = ""
    errors: List[str] = field(default_factory=list)
    path: str = ""          # for storage kinds: the quarantined file
    created_at: str = field(default_factory=_utc_now)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    def write(self, directory: os.PathLike) -> Path:
        """Write ``<dir>/<kind>-<digest[:16]>.json`` atomically."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        name = f"{self.kind}-{self.digest[:16] or 'unkeyed'}.json"
        path = directory / name
        tmp = directory / f".{name}.tmp"
        tmp.write_text(self.to_json(), encoding="utf-8")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: os.PathLike) -> "QuarantineRecord":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        fields = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = set(payload) - fields
        if unknown:
            raise ConfigurationError(
                f"quarantine record carries unknown fields {sorted(unknown)}"
            )
        return cls(**payload)


def read_quarantine(directory: os.PathLike) -> List[QuarantineRecord]:
    """Every readable quarantine record under ``directory`` (sorted by
    file name); missing directory reads as empty."""
    directory = Path(directory)
    records: List[QuarantineRecord] = []
    if not directory.is_dir():
        return records
    for path in sorted(directory.glob("*.json")):
        try:
            records.append(QuarantineRecord.load(path))
        except (OSError, ValueError, ConfigurationError):
            continue
    return records
