"""Warm-started sweeps: the prefix/reprogram contract plus the store.

Many of the paper's grids share an identical *prefix* — the slow-start
ramp before the first engineered loss, the background-flow build-up
before a target flow attaches — and only diverge afterwards.  The
warm-start contract splits every such harness cell into two named,
picklable pieces:

* a **prefix spec** (:class:`PrefixSpec`) — a task spec whose callable
  builds a world *and advances it to the capture point*, returning it.
  Equal prefixes have equal spec digests, so the store captures each
  prefix once per code version (see :meth:`SnapshotStore.ensure_prefix`)
  no matter how many cells — or sweeps — fork it;
* a **reprogram step** — the cell-side top-level function that restores
  the frozen prefix, applies the cell's own divergence (reprogram a
  loss module, attach the target flow, swap an ACK-loss rate) and runs
  the remainder.

The determinism contract mirrors the runner's: the *cold* path of a
warm-startable harness runs the exact same build + advance + reprogram
sequence without the snapshot round-trip, so warm rows are bit-identical
to cold rows (the engine's serial counter and the packet-uid counter
both survive the pickle).  :func:`warm_specs` is the sweep-side glue:
group cells by prefix digest, ensure each prefix exists in the store,
and emit the per-cell task specs.

Worlds cannot ride inside a :class:`~repro.runner.spec.TaskSpec` (specs
carry only canonically-hashable primitives, by design), so cells share
the frozen prefix through the :class:`SnapshotStore`: the coordinating
process captures once and ``put``s the snapshot, and each worker cell
receives just the digest string in its spec and ``get``s the frozen
world back.  The digest is content-derived (the canonical state digest
of the captured world), so a cell's cache identity automatically
changes when the warm-up prefix it continues from changes.

Files live under ``<cache root>/snapshots/<digest>.snap`` — next to the
result cache, governed by the same ``REPRO_CACHE_DIR`` override — and
are written atomically (tmp + ``os.replace``) so concurrent sweeps
never observe a torn snapshot.  :meth:`SnapshotStore.put_delta` stores
a fork as a :class:`~repro.snapshot.delta.DeltaSnapshot` against its
base (``<digest>.delta``), falling back to a full ``.snap`` when the
diff would not save space; :meth:`SnapshotStore.get` resolves either
transparently.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import SnapshotError, SnapshotFormatError
from repro.runner.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR
from repro.runner.resilience import QUARANTINE_SUBDIR, QuarantineRecord
from repro.runner.spec import TaskSpec
from repro.snapshot import Snapshot, SnapshotInfo
from repro.snapshot.delta import DeltaInfo, DeltaSnapshot, should_fall_back

#: Subdirectory of the cache root that holds snapshots.
SNAPSHOT_SUBDIR = "snapshots"

#: Subdirectory (inside the store root) mapping prefix-spec digests to
#: snapshot digests, per code fingerprint.
PREFIX_INDEX_SUBDIR = "prefix-index"

#: Subdirectory (inside the store root) mapping *snapshot* digests back
#: to the canonical prefix spec that captured them — the self-healing
#: layer's recipe for recomputing a lost/corrupt prefix from cold
#: (:func:`load_prefix`) and ``fsck --rebuild``'s repair input.
PREFIX_META_SUBDIR = "prefix-meta"

#: Safety bound on ``.delta`` base chains (a delta whose base is itself
#: a delta, etc.).  Forks diff against full prefixes in practice, so
#: anything deeper than this is a store corruption, not a design.
MAX_DELTA_CHAIN = 8

#: Cost-model constants for :func:`warm_start_decision`, expressed as
#: fractions of one cold cell's runtime.  Capturing a prefix pays for
#: pickling, digesting and atomically writing the frozen world on top
#: of simulating it; each warm cell pays an unpickle + uid rewind.
#: Calibrated coarsely against BENCH_experiments.json (table5's warm
#: replay at 0.99x cold with a ~2.5% prefix fraction pins the restore
#: overhead near 5%); the model only needs the sign of the saving, not
#: its magnitude.
CAPTURE_OVERHEAD_FRACTION = 0.10
RESTORE_OVERHEAD_FRACTION = 0.05


class PrefixSpec(TaskSpec):
    """A :class:`TaskSpec` whose callable builds a world **and advances
    it to its capture point**, returning the world.

    The callable must be deterministic in the spec's arguments (same
    rule as any task spec) and must leave the engine between events so
    the world is capturable.  :meth:`capture` runs it and freezes the
    result.
    """

    def capture(self, label: str = "") -> Snapshot:
        world = self.run()
        return Snapshot.capture(world, label=label or self.describe())


def step_until(
    sim,
    predicate: Callable[[], bool],
    step: float = 0.02,
    deadline: Optional[float] = None,
) -> bool:
    """Advance ``sim`` in ``step``-second increments until ``predicate()``
    holds (returns True) or ``deadline`` (absolute sim time) passes
    (returns False).

    This is the prefix-builder's stepping loop: run close to — but
    provably short of — a divergence point that is defined by *state*
    (a sender's highest transmitted sequence) rather than by a known
    wall time.  Callers pick ``step`` smaller than the state's growth
    per check so the loop cannot overshoot.
    """
    while not predicate():
        if deadline is not None and sim.now >= deadline:
            return False
        sim.run(until=sim.now + step)
    return True


@dataclass(frozen=True)
class WarmStartDecision:
    """Outcome of :func:`warm_start_decision` — the cheap go/no-go cost
    model behind auto-skipped warm starts.  ``reason`` is human-readable
    and lands in the run manifest as ``warm_start_skipped`` when
    ``use_warm`` is False."""

    use_warm: bool
    reason: str
    cells: int
    prefixes: int
    missing: int
    prefix_fraction: float
    #: Predicted sweep-time saving in units of one cold cell's runtime
    #: (negative = warm-starting would cost time).
    predicted_saving: float


def warm_start_decision(
    cells: Sequence,
    prefix_for: Callable[..., PrefixSpec],
    prefix_fraction: float,
    store: "SnapshotStore",
    fingerprint: Optional[str] = None,
) -> WarmStartDecision:
    """Predict whether warm-starting this sweep beats running it cold.

    The model is deliberately cheap — it groups the cells by prefix
    digest and compares, in units of one cold cell's runtime:

    * **spent**: simulating each prefix *not already in the store*
      (``prefix_fraction`` each) plus its capture overhead
      (:data:`CAPTURE_OVERHEAD_FRACTION`), plus every cell's restore
      overhead (:data:`RESTORE_OVERHEAD_FRACTION`);
    * **saved**: the prefix fraction of every cell, which warm cells
      skip.

    A sweep where each cell has a unique prefix (no sharing) can never
    win on its first pass: the prefix is simulated exactly as often as
    cold would, plus the snapshot round-trip — table5's measured
    warm-pass parity in BENCH_experiments.json.  The model is greedy
    per sweep: it does not credit a capture against *future* sweeps'
    replays, so callers that want to invest anyway (benchmarks, the
    bit-identity suites) pass ``warm_start="force"`` to the harnesses.
    """
    n = len(cells)
    if n == 0:
        return WarmStartDecision(False, "empty sweep", 0, 0, 0, prefix_fraction, 0.0)
    if prefix_fraction <= 0.0:
        return WarmStartDecision(
            False,
            "prefix fraction is ~0: nothing for warm cells to skip",
            n,
            0,
            0,
            prefix_fraction,
            0.0,
        )
    if fingerprint is None:
        from repro.runner.fingerprint import code_fingerprint

        fingerprint = code_fingerprint()
    prefixes: Dict[str, PrefixSpec] = {}
    for cell in cells:
        prefix = prefix_for(cell)
        prefixes.setdefault(prefix.digest(), prefix)
    missing = sum(
        1
        for prefix in prefixes.values()
        if store.lookup_prefix(prefix, fingerprint) is None
    )
    saving = (
        prefix_fraction * n                      # work warm cells skip
        - RESTORE_OVERHEAD_FRACTION * n          # every cell unpickles
        - prefix_fraction * missing              # prefixes still simulated once
        - CAPTURE_OVERHEAD_FRACTION * missing    # + pickled, digested, stored
    )
    detail = (
        f"{n} cells over {len(prefixes)} prefixes ({missing} to capture), "
        f"prefix fraction {prefix_fraction:.2f}, predicted saving "
        f"{saving:+.2f} cold-cell units"
    )
    if saving > 0.0:
        return WarmStartDecision(
            True, detail, n, len(prefixes), missing, prefix_fraction, saving
        )
    return WarmStartDecision(
        False,
        f"no predicted win: {detail}",
        n,
        len(prefixes),
        missing,
        prefix_fraction,
        saving,
    )


def capture_prefix_cell(
    fn: str,
    args: Sequence,
    kwargs: Dict,
    store_root: str,
    fingerprint: str,
) -> str:
    """Worker entry point for parallel prefix capture: rebuild the
    :class:`PrefixSpec` from its spec fields and ensure it in the store
    (idempotent — the store's index and snapshot writes are atomic, so
    concurrent captures of the same prefix are safe)."""
    spec = PrefixSpec(fn=fn, args=tuple(args), kwargs=dict(kwargs))
    return SnapshotStore(store_root).ensure_prefix(spec, fingerprint=fingerprint)


def warm_specs(
    cells: Sequence,
    prefix_for: Callable[..., PrefixSpec],
    spec_for: Callable[..., TaskSpec],
    store: "SnapshotStore",
    fingerprint: Optional[str] = None,
    runner=None,
) -> List[TaskSpec]:
    """Build the warm task specs for a sweep.

    ``prefix_for(cell)`` names each cell's shared prefix; cells whose
    prefix specs have equal digests share one capture.  Each distinct
    prefix is ensured in ``store`` (captured at most once per code
    version), then ``spec_for(cell, digest)`` emits the cell's task
    spec carrying the snapshot digest.

    With a parallel ``runner`` (a :class:`~repro.runner.pool.
    SweepRunner` with ``jobs > 1``), the prefixes that are *not* yet in
    the store are captured concurrently over the runner's worker pool
    instead of one after another — the fix for table5's
    slower-than-cold first warm pass, where 19-flow prefixes dominate
    the sweep.  Results are unchanged: captures are deterministic in
    their spec, and the coordinating process re-reads every digest
    through the (atomically written) prefix index afterwards.
    ``store.prefix_hits`` / ``store.prefix_captures`` record the split
    for telemetry.
    """
    if fingerprint is None:
        from repro.runner.fingerprint import code_fingerprint

        fingerprint = code_fingerprint()
    prefixes: Dict[str, PrefixSpec] = {}
    keys: List[str] = []
    for cell in cells:
        prefix = prefix_for(cell)
        key = prefix.digest()
        keys.append(key)
        prefixes.setdefault(key, prefix)
    missing = [
        key
        for key, prefix in prefixes.items()
        if store.lookup_prefix(prefix, fingerprint) is None
    ]
    store.prefix_hits += len(prefixes) - len(missing)
    store.prefix_captures += len(missing)
    jobs = getattr(runner, "jobs", 1) if runner is not None else 1
    if len(missing) > 1 and jobs > 1:
        from repro.runner.pool import SweepRunner

        capture_specs = [
            TaskSpec(
                fn="repro.runner.warmstart:capture_prefix_cell",
                args=(
                    prefixes[key].fn,
                    prefixes[key].args,
                    prefixes[key].kwargs,
                    str(store.root),
                    fingerprint,
                ),
                label=f"prefix capture: {prefixes[key].describe()}",
            )
            for key in missing
        ]
        SweepRunner(
            jobs=min(jobs, len(capture_specs)),
            observer=getattr(runner, "observer", None),
        ).map(capture_specs)
    digests: Dict[str, str] = {}
    specs: List[TaskSpec] = []
    for cell, key in zip(cells, keys):
        if key not in digests:
            digests[key] = store.ensure_prefix(prefixes[key], fingerprint=fingerprint)
        specs.append(spec_for(cell, digests[key]))
    return specs


class SnapshotStore:
    """Content-addressed snapshot files shared across processes."""

    def __init__(self, root: Optional[os.PathLike] = None):
        if root is None:
            cache_root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
            root = Path(cache_root) / SNAPSHOT_SUBDIR
        self.root = Path(root)
        #: Prefix reuse counters, maintained by :func:`warm_specs`
        #: (telemetry: the warm-start hit rate in a run manifest).
        self.prefix_hits = 0
        self.prefix_captures = 0

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.snap"

    def delta_path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.delta"

    def contains(self, digest: str) -> bool:
        return self.path_for(digest).exists() or self.delta_path_for(digest).exists()

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_SUBDIR

    def quarantine(self, path: Path, digest: str, reason: str) -> None:
        """Move a corrupt store file aside (never delete evidence) and
        leave a structured record.  Best-effort, same contract as the
        result cache's quarantine: failing to quarantine must not mask
        the corruption that triggered it."""
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
            QuarantineRecord(
                digest=digest,
                label=str(path),
                kind="snapshot" if path.suffix == ".snap" else "delta",
                reason=reason,
                path=str(self.quarantine_dir / path.name),
            ).write(self.quarantine_dir)
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    def intact(self, digest: str, _depth: int = 0) -> bool:
        """True when ``digest`` is stored *and readable by this build*.

        The read-path gate for self-healing: a truncated or bit-flipped
        file is quarantined on the spot and reported missing (so the
        caller recaptures — cold-start degrade), while a file written
        by a *different* format version (foreign ``SNAPSHOT_FORMAT`` /
        ``DELTA_FORMAT``) is left untouched but still reported missing:
        mixed-version stores degrade to recompute instead of refusing
        (see docs/RESILIENCE.md).  Deltas are intact only when their
        whole base chain is.
        """
        path = self.path_for(digest)
        if path.exists():
            try:
                Snapshot.verify_file(path)
                return True
            except SnapshotFormatError:
                return False
            except SnapshotError as error:
                self.quarantine(path, digest, str(error))
                return False
        delta_path = self.delta_path_for(digest)
        if delta_path.exists():
            if _depth >= MAX_DELTA_CHAIN:
                return False
            try:
                info = DeltaSnapshot.verify_file(delta_path)
            except SnapshotFormatError:
                return False
            except SnapshotError as error:
                self.quarantine(delta_path, digest, str(error))
                return False
            return self.intact(info.base_digest, _depth + 1)
        return False

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, snapshot: Snapshot) -> str:
        """Persist ``snapshot`` in full; returns its digest (the
        retrieval key).

        Idempotent: an existing file for the same digest is left alone
        (content-addressed, so it is byte-equivalent for all readers).
        """
        digest = snapshot.digest
        path = self.path_for(digest)
        if path.exists():
            # Content-addressed, so an *intact* existing file is
            # byte-equivalent and can be kept; a corrupt or foreign one
            # is replaced — latest-writer-wins is safe for a store that
            # is a cache, and it is how ``load_prefix`` heals corruption.
            if self.intact(digest):
                return digest
        self._atomic_write(path, snapshot.save)
        return digest

    def put_delta(self, snapshot: Snapshot, base_digest: str) -> str:
        """Persist ``snapshot`` as a delta against the stored snapshot
        ``base_digest``; returns the snapshot's digest.

        Falls back to a full ``.snap`` when the delta would not be
        smaller (genuinely divergent worlds) — callers never need to
        care which representation won; :meth:`get` resolves both.
        """
        digest = snapshot.digest
        if self.intact(digest):
            return digest
        try:
            base = self.get(base_digest)
        except SnapshotError:
            # Base missing, foreign, or quarantined mid-flight: a delta
            # would be born broken, so store the fork in full instead.
            return self.put(snapshot)
        delta = DeltaSnapshot.diff(snapshot, base)
        if should_fall_back(delta, snapshot):
            return self.put(snapshot)
        self._atomic_write(self.delta_path_for(digest), delta.save)
        return digest

    def _atomic_write(self, path: Path, save: Callable[[str], Path]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        os.close(fd)
        try:
            save(tmp_name)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, digest: str) -> Snapshot:
        return self._get(digest, depth=0)

    def _get(self, digest: str, depth: int) -> Snapshot:
        path = self.path_for(digest)
        if path.exists():
            try:
                return Snapshot.load(path)
            except SnapshotFormatError:
                raise
            except SnapshotError as error:
                self.quarantine(path, digest, str(error))
                raise
        delta_path = self.delta_path_for(digest)
        if delta_path.exists():
            if depth >= MAX_DELTA_CHAIN:
                raise SnapshotError(
                    f"delta chain deeper than {MAX_DELTA_CHAIN} resolving "
                    f"{digest[:12]}… — the store is corrupted or cyclic"
                )
            try:
                delta = DeltaSnapshot.load(delta_path)
            except SnapshotFormatError:
                raise
            except SnapshotError as error:
                self.quarantine(delta_path, digest, str(error))
                raise
            base = self._get(delta.info.base_digest, depth + 1)
            return delta.rebuild(base)
        raise SnapshotError(
            f"no snapshot {digest[:12]}… in {self.root} — the warm-up "
            "capture must run (and put) before the sweep cells execute"
        )

    def info(self, digest: str) -> Union[SnapshotInfo, DeltaInfo]:
        """Header metadata without reading the payload (full or delta)."""
        path = self.path_for(digest)
        if path.exists():
            return Snapshot.read_info(path)
        delta_path = self.delta_path_for(digest)
        if delta_path.exists():
            return DeltaSnapshot.read_info(delta_path)
        raise SnapshotError(f"no snapshot {digest[:12]}… in {self.root}")

    # ------------------------------------------------------------------
    # prefix index
    # ------------------------------------------------------------------
    def _prefix_index_path(self, spec: PrefixSpec, fingerprint: str) -> Path:
        return (
            self.root
            / PREFIX_INDEX_SUBDIR
            / fingerprint[:16]
            / f"{spec.digest()}.json"
        )

    def lookup_prefix(
        self, spec: PrefixSpec, fingerprint: Optional[str] = None
    ) -> Optional[str]:
        """The snapshot digest of ``spec``'s stored capture, or None
        when the prefix would have to be (re)captured — the read half
        of :meth:`ensure_prefix`, with no side effects."""
        if fingerprint is None:
            from repro.runner.fingerprint import code_fingerprint

            fingerprint = code_fingerprint()
        index_path = self._prefix_index_path(spec, fingerprint)
        if not index_path.exists():
            return None
        try:
            entry = json.loads(index_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if entry and self.intact(entry.get("snapshot", "")):
            return entry["snapshot"]
        return None

    def ensure_prefix(
        self, spec: PrefixSpec, fingerprint: Optional[str] = None
    ) -> str:
        """Return the snapshot digest of ``spec``'s captured prefix,
        capturing (and storing) it only when no current capture exists.

        The index maps ``(prefix-spec digest, code fingerprint)`` to a
        snapshot digest: the snapshot digest itself is unknowable before
        simulating the prefix, so without the index every sweep would
        re-simulate it just to learn the key.  Keying by code
        fingerprint keeps the mapping honest across source changes —
        the same staleness rule the result cache applies.
        """
        if fingerprint is None:
            from repro.runner.fingerprint import code_fingerprint

            fingerprint = code_fingerprint()
        stored = self.lookup_prefix(spec, fingerprint)
        if stored is not None:
            return stored
        index_path = self._prefix_index_path(spec, fingerprint)
        snapshot = spec.capture()
        digest = self.put(snapshot)
        self._write_json_atomic(
            index_path, {"snapshot": digest, "spec": spec.canonical()}
        )
        self._write_json_atomic(
            self._prefix_meta_path(digest),
            {"snapshot": digest, "spec": spec.canonical(), "label": spec.label},
        )
        return digest

    def _write_json_atomic(self, path: Path, payload: Dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        os.close(fd)
        try:
            Path(tmp_name).write_text(json.dumps(payload), encoding="utf-8")
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _prefix_meta_path(self, digest: str) -> Path:
        return self.root / PREFIX_META_SUBDIR / f"{digest}.json"

    def prefix_spec_for(self, digest: str) -> Optional[PrefixSpec]:
        """The :class:`PrefixSpec` that captured snapshot ``digest``,
        rebuilt from the prefix-meta reverse index — or None when the
        snapshot predates the meta index (pre-resilience stores) or was
        never a prefix capture.  This is the recompute recipe behind
        :func:`load_prefix` and ``fsck --rebuild``."""
        meta_path = self._prefix_meta_path(digest)
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        canonical = meta.get("spec")
        if not canonical:
            return None
        try:
            return PrefixSpec.from_canonical(canonical, label=meta.get("label", ""))
        except Exception:  # noqa: BLE001 - a broken recipe is "no recipe"
            return None


def fetch_prefix(digest: str, store_root=None) -> Snapshot:
    """The frozen prefix snapshot ``digest``, healing the store if
    needed.

    Self-healing: when the stored file is missing, truncated,
    bit-flipped, or written by a foreign format version, the prefix is
    *recomputed from its recipe* (the canonical spec recorded in the
    prefix-meta index at capture time) and the recomputed snapshot is
    put back into the store for the next reader.  Recomputation is
    bit-equivalent — the prefix callable is deterministic in its spec —
    and the recomputed state digest is verified against the requested
    one, so a drifted recipe raises instead of silently substituting a
    different world.  Snapshots with no recorded recipe (pre-resilience
    stores, non-prefix snapshots) re-raise the original storage error.
    """
    store = SnapshotStore(store_root)
    try:
        return store.get(digest)
    except SnapshotError as error:
        spec = store.prefix_spec_for(digest)
        if spec is None:
            raise
        snapshot = spec.capture()
        if snapshot.digest != digest:
            raise SnapshotError(
                f"recomputing prefix {digest[:12]}… from its recorded spec "
                f"produced state digest {snapshot.digest[:12]}… — the code "
                "or the recipe drifted; refusing to substitute"
            ) from error
        store.put(snapshot)
        return snapshot


def load_prefix(digest: str, store_root=None, verify: bool = False):
    """Restore the frozen prefix world ``digest`` — the cell-side entry
    point warm harness cells use instead of a bare
    ``store.get(digest).restore()`` — with :func:`fetch_prefix`'s
    self-healing on the way."""
    return fetch_prefix(digest, store_root).restore(verify=verify)
