"""Digest-keyed on-disk snapshot store for warm-started sweeps.

Worlds cannot ride inside a :class:`~repro.runner.spec.TaskSpec` (specs
carry only canonically-hashable primitives, by design), so a sweep that
wants every cell to start from one warmed-up simulation shares it
through this store instead: the coordinating process captures once and
``put``s the snapshot, and each worker cell receives just the digest
string in its spec and ``get``s the frozen world back.  The digest is
content-derived (the canonical state digest of the captured world), so
a cell's cache identity automatically changes when the warm-up prefix
it continues from changes.

Files live under ``<cache root>/snapshots/<digest>.snap`` — next to the
result cache, governed by the same ``REPRO_CACHE_DIR`` override — and
are written atomically (tmp + ``os.replace``) so concurrent sweeps
never observe a torn snapshot.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.errors import SnapshotError
from repro.runner.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR
from repro.snapshot import Snapshot, SnapshotInfo

#: Subdirectory of the cache root that holds snapshots.
SNAPSHOT_SUBDIR = "snapshots"


class SnapshotStore:
    """Content-addressed snapshot files shared across processes."""

    def __init__(self, root: Optional[os.PathLike] = None):
        if root is None:
            cache_root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
            root = Path(cache_root) / SNAPSHOT_SUBDIR
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.snap"

    def contains(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def put(self, snapshot: Snapshot) -> str:
        """Persist ``snapshot``; returns its digest (the retrieval key).

        Idempotent: an existing file for the same digest is left alone
        (content-addressed, so it is byte-equivalent for all readers).
        """
        digest = snapshot.digest
        path = self.path_for(digest)
        if path.exists():
            return digest
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        os.close(fd)
        try:
            snapshot.save(tmp_name)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return digest

    def get(self, digest: str) -> Snapshot:
        path = self.path_for(digest)
        if not path.exists():
            raise SnapshotError(
                f"no snapshot {digest[:12]}… in {self.root} — the warm-up "
                "capture must run (and put) before the sweep cells execute"
            )
        return Snapshot.load(path)

    def info(self, digest: str) -> SnapshotInfo:
        """Header metadata without reading the payload."""
        return Snapshot.read_info(self.path_for(digest))
