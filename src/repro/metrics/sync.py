"""Global-synchronization metrics.

The paper motivates RED with the classic observation (its ref [22])
that drop-tail "arbitrarily distribute[s] packet losses among TCP
connections, leading to global synchronization": many flows lose
packets in the same buffer-overflow instant, halve together, and leave
the link idle together.

:func:`loss_synchronization_index` quantifies this directly from
per-flow drop times: fraction of loss events that hit more than one
flow within a small window.  0 = perfectly desynchronised losses,
1 = every loss event is shared.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError


def cluster_loss_events(
    drop_times_by_flow: Dict[int, Sequence[float]],
    window: float = 0.05,
) -> List[Tuple[float, set]]:
    """Group all flows' drops into loss events.

    Drops closer than ``window`` seconds belong to one event.  Returns
    ``[(event_start_time, {flow ids hit}), ...]`` in time order.
    """
    if window <= 0:
        raise ConfigurationError("clustering window must be positive")
    tagged = sorted(
        (time, flow_id)
        for flow_id, times in drop_times_by_flow.items()
        for time in times
    )
    events: List[Tuple[float, set]] = []
    for time, flow_id in tagged:
        if events and time - events[-1][0] <= window:
            events[-1][1].add(flow_id)
        else:
            events.append((time, {flow_id}))
    return events


def loss_synchronization_index(
    drop_times_by_flow: Dict[int, Sequence[float]],
    window: float = 0.05,
) -> float:
    """Fraction of loss events striking two or more flows at once.

    Returns 0.0 when there are no loss events at all.
    """
    events = cluster_loss_events(drop_times_by_flow, window)
    if not events:
        return 0.0
    shared = sum(1 for _, flows in events if len(flows) >= 2)
    return shared / len(events)


def mean_flows_per_event(
    drop_times_by_flow: Dict[int, Sequence[float]],
    window: float = 0.05,
) -> float:
    """Average number of distinct flows hit per loss event (1.0 =
    perfectly desynchronised)."""
    events = cluster_loss_events(drop_times_by_flow, window)
    if not events:
        return 0.0
    return sum(len(flows) for _, flows in events) / len(events)
