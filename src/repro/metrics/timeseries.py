"""Sequence-number time series — the "standard TCP sequence number
plots" of Figure 6.

:class:`SequenceTracer` wraps a :class:`~repro.metrics.flowstats.FlowStats`
and exposes the three series the paper plots: packets sent (first
transmissions), retransmissions, and the cumulative-ACK staircase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.metrics.flowstats import FlowStats


@dataclass
class SequenceTrace:
    """The extracted series (each a list of (time, packet-number))."""

    sends: List[Tuple[float, int]]
    retransmits: List[Tuple[float, int]]
    acks: List[Tuple[float, int]]

    def final_sequence(self) -> int:
        """Highest cumulatively acknowledged packet — the paper's
        headline comparison in Figure 6 (higher = more delivered in the
        same 6 seconds)."""
        return self.acks[-1][1] if self.acks else 0


class SequenceTracer:
    """Builds :class:`SequenceTrace` views from flow statistics."""

    def __init__(self, stats: FlowStats):
        self._stats = stats

    def trace(self, t_start: float = 0.0, t_end: float = float("inf")) -> SequenceTrace:
        sends = [
            (t, seq)
            for t, seq, retransmit in self._stats.send_series
            if not retransmit and t_start <= t <= t_end
        ]
        retransmits = [
            (t, seq)
            for t, seq, retransmit in self._stats.send_series
            if retransmit and t_start <= t <= t_end
        ]
        acks = [(t, a) for t, a in self._stats.ack_series if t_start <= t <= t_end]
        return SequenceTrace(sends=sends, retransmits=retransmits, acks=acks)

    def stall_periods(
        self, threshold: float, t_end: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Intervals longer than ``threshold`` with no ACK progress —
        the visible plateaus in Figure 6(a) where New-Reno sits waiting
        for its timeout.

        Gaps *between* consecutive ACKs are always reported.  Passing
        ``t_end`` (the end of the observation window) additionally
        reports the trailing stall of a flow that went quiet and never
        ACKed again — exactly the timeout plateau Figure 6(a) ends on,
        which a between-ACKs-only scan misses entirely.  A flow with no
        ACKs at all counts as stalled from t=0.
        """
        acks = self._stats.ack_series
        stalls: List[Tuple[float, float]] = []
        for (t0, _), (t1, _) in zip(acks, acks[1:]):
            if t1 - t0 >= threshold:
                stalls.append((t0, t1))
        if t_end is not None:
            t_last = acks[-1][0] if acks else 0.0
            if t_end - t_last >= threshold:
                stalls.append((t_last, t_end))
        return stalls
