"""Measurement: per-flow statistics, effective throughput, recovery
episode analysis, sequence-number time series and fairness indices."""

from repro.metrics.flowstats import FlowStats, LeanFlowStats, RecoveryEpisode
from repro.metrics.throughput import (
    effective_throughput_bps,
    goodput_bps,
    loss_recovery_span,
    loss_recovery_throughput,
    recovery_span_throughput,
)
from repro.metrics.fairness import jain_index
from repro.metrics.timeseries import SequenceTracer
from repro.metrics.export import (
    NsTraceWriter,
    flow_stats_to_csv,
    rows_to_csv,
    rows_to_json,
)
from repro.metrics.queuemon import QueueMonitor
from repro.metrics.utilization import LinkMonitor
from repro.metrics.sync import (
    cluster_loss_events,
    loss_synchronization_index,
    mean_flows_per_event,
)

__all__ = [
    "NsTraceWriter",
    "flow_stats_to_csv",
    "rows_to_csv",
    "rows_to_json",
    "QueueMonitor",
    "LinkMonitor",
    "cluster_loss_events",
    "loss_synchronization_index",
    "mean_flows_per_event",
    "FlowStats",
    "LeanFlowStats",
    "RecoveryEpisode",
    "goodput_bps",
    "effective_throughput_bps",
    "loss_recovery_span",
    "loss_recovery_throughput",
    "recovery_span_throughput",
    "jain_index",
    "SequenceTracer",
]
