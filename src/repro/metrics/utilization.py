"""Link utilization measurement.

:class:`LinkMonitor` samples a link's cumulative delivery counters on a
fixed period and reports utilization (delivered bits over capacity) per
window and overall — the quantity behind the paper's §1 complaint that
New-Reno's exponential transmission decay "lowers link utilization even
if it does not cause the loss of self-clocking".
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.sim.engine import Simulator


class LinkMonitor:
    """Periodic sampler of one link's delivered bytes."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        period: float = 0.1,
        start_time: float = 0.0,
    ):
        if period <= 0:
            raise ConfigurationError("sampling period must be positive")
        self.sim = sim
        self.link = link
        self.period = period
        # (window_end_time, bytes delivered during the window)
        self.windows: List[Tuple[float, int]] = []
        self._last_bytes = link.bytes_delivered
        self._started = start_time
        # Re-baseline at start_time so deliveries before the monitoring
        # window do not inflate the first sample.
        sim.schedule_at(start_time, self._baseline)
        sim.schedule_at(start_time + period, self._sample)

    def _baseline(self) -> None:
        self._last_bytes = self.link.bytes_delivered

    def _sample(self) -> None:
        delivered = self.link.bytes_delivered
        self.windows.append((self.sim.now, delivered - self._last_bytes))
        self._last_bytes = delivered
        self.sim.schedule(self.period, self._sample)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def utilization_series(self) -> List[Tuple[float, float]]:
        """Per-window utilization in [0, ~1] (transmission overlap can
        nudge a window a hair above 1)."""
        capacity_bytes = self.link.bandwidth_bps * self.period / 8.0
        return [(t, delivered / capacity_bytes) for t, delivered in self.windows]

    def mean_utilization(self) -> float:
        series = self.utilization_series()
        if not series:
            return 0.0
        return sum(u for _, u in series) / len(series)

    def idle_windows(self, threshold: float = 0.05) -> int:
        """Number of windows with utilization below ``threshold`` —
        the stalls the paper's Fig. 6(a) narrative describes."""
        return sum(1 for _, u in self.utilization_series() if u < threshold)
