"""Queue occupancy monitoring.

:class:`QueueMonitor` samples a queue's instantaneous length (and the
RED average where present) on a fixed period — the tool for inspecting
the bottleneck dynamics behind the paper's drop-tail-vs-RED discussion
(global synchronization shows up as deep coordinated valleys in the
occupancy series).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.net.queues import PacketQueue
from repro.sim.engine import Simulator


class QueueMonitor:
    """Periodic sampler of one queue's occupancy."""

    def __init__(
        self,
        sim: Simulator,
        queue: PacketQueue,
        period: float = 0.01,
        start_time: float = 0.0,
    ):
        if period <= 0:
            raise ConfigurationError("sampling period must be positive")
        self.sim = sim
        self.queue = queue
        self.period = period
        self.samples: List[Tuple[float, int]] = []
        self.avg_samples: List[Tuple[float, float]] = []
        sim.schedule_at(start_time, self._sample)

    def _sample(self) -> None:
        self.samples.append((self.sim.now, len(self.queue)))
        red_avg = getattr(self.queue, "avg", None)
        if red_avg is not None:
            self.avg_samples.append((self.sim.now, red_avg))
        self.sim.schedule(self.period, self._sample)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def mean_occupancy(self) -> float:
        if not self.samples:
            return 0.0
        return sum(length for _, length in self.samples) / len(self.samples)

    def max_occupancy(self) -> int:
        return max((length for _, length in self.samples), default=0)

    def utilisation_proxy(self) -> float:
        """Fraction of samples with a non-empty queue — a rough proxy
        for how often the output link had work (1.0 = always busy)."""
        if not self.samples:
            return 0.0
        busy = sum(1 for _, length in self.samples if length > 0)
        return busy / len(self.samples)

    def empty_periods(self, min_duration: float = 0.05) -> List[Tuple[float, float]]:
        """Contiguous stretches with an empty queue longer than
        ``min_duration`` — starvation valleys (the signature of global
        synchronization at a drop-tail bottleneck)."""
        valleys: List[Tuple[float, float]] = []
        start: Optional[float] = None
        for time, length in self.samples:
            if length == 0:
                if start is None:
                    start = time
            elif start is not None:
                if time - start >= min_duration:
                    valleys.append((start, time))
                start = None
        if start is not None and self.samples:
            end = self.samples[-1][0]
            if end - start >= min_duration:
                valleys.append((start, end))
        return valleys
