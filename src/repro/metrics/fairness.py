"""Fairness indices for multi-flow experiments (Section 5)."""

from __future__ import annotations

from typing import Sequence


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n · Σx²), in (0, 1]; 1 = equal.

    Returns 1.0 for an empty input (vacuously fair).
    """
    xs = [x for x in allocations]
    if not xs:
        return 1.0
    total = sum(xs)
    squares = sum(x * x for x in xs)
    if squares == 0:
        return 1.0
    return (total * total) / (len(xs) * squares)


def throughput_ratio(flow_bps: float, fair_share_bps: float) -> float:
    """A flow's throughput normalised by its fair share (1.0 = exactly
    fair; the paper's Section 5 argues RR lands slightly above 1 only
    by using bandwidth Reno leaves idle)."""
    if fair_share_bps <= 0:
        return 0.0
    return flow_bps / fair_share_bps
