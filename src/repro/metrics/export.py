"""Exporters: turn runs into files other tools can consume.

* :func:`flow_stats_to_csv` — one CSV per series (sends / acks / cwnd)
  for plotting with anything;
* :func:`rows_to_csv` — generic list-of-dicts table writer used by the
  experiment harnesses;
* :class:`NsTraceWriter` — an ns-2-style flat event trace
  (``<op> <time> <src> <flow> <seq> ...``) built by subscribing to the
  simulation trace bus, for eyeballing with the classic toolchains.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.metrics.flowstats import FlowStats
from repro.sim.tracing import TraceBus, TraceRecord

PathLike = Union[str, Path]


def flow_stats_to_csv(stats: FlowStats, directory: PathLike, prefix: str = "flow") -> List[Path]:
    """Write a flow's send/ack/cwnd series as three CSV files.

    Returns the paths written (``<prefix>_sends.csv`` etc.).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    sends_path = directory / f"{prefix}_sends.csv"
    with sends_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "seqno", "retransmit"])
        for time, seqno, retransmit in stats.send_series:
            writer.writerow([f"{time:.6f}", seqno, int(retransmit)])
    written.append(sends_path)

    acks_path = directory / f"{prefix}_acks.csv"
    with acks_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "ackno"])
        for time, ackno in stats.ack_series:
            writer.writerow([f"{time:.6f}", ackno])
    written.append(acks_path)

    cwnd_path = directory / f"{prefix}_cwnd.csv"
    with cwnd_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "cwnd"])
        for time, cwnd in stats.cwnd_series:
            writer.writerow([f"{time:.6f}", f"{cwnd:.4f}"])
    written.append(cwnd_path)
    return written


def rows_to_csv(rows: Sequence[Mapping[str, object]], path: PathLike) -> Path:
    """Write a list of homogeneous dicts as CSV (keys of the first row
    define the columns)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("")
        return path
    fields = list(rows[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        for row in rows:
            writer.writerow(dict(row))
    return path


def rows_to_json(rows: Sequence[Mapping[str, object]], path: PathLike) -> Path:
    """Write rows as a JSON array (pretty-printed, stable ordering)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps([dict(r) for r in rows], indent=2, sort_keys=True))
    return path


class NsTraceWriter:
    """Collects ns-2-style trace lines from a :class:`TraceBus`.

    Event codes follow the classic format loosely:
    ``+`` send at a sender, ``d`` drop, ``a`` ACK arrival at the sender,
    ``t`` timeout.  Lines are buffered in memory; call :meth:`write` to
    flush to a file, or read :attr:`lines` directly.
    """

    _CATEGORIES = {
        "tcp.send": "+",
        "link.drop": "d",
        "link.injected_drop": "d",
        "tcp.ack": "a",
        "tcp.timeout": "t",
    }

    def __init__(self, bus: TraceBus, flow_id: Optional[int] = None):
        self.flow_id = flow_id
        self.lines: List[str] = []
        for category in self._CATEGORIES:
            bus.subscribe(category, self._on_record)

    def _on_record(self, record: TraceRecord) -> None:
        code = self._CATEGORIES[record.category]
        fields = record.fields
        if record.category.startswith("link."):
            packet = fields.get("packet")
            if packet is None or (self.flow_id is not None and packet.flow_id != self.flow_id):
                return
            self.lines.append(
                f"{code} {record.time:.6f} {record.source} f{packet.flow_id} {packet.seqno}"
            )
            return
        seqno = fields.get("seqno", fields.get("ackno", fields.get("snd_una", "-")))
        self.lines.append(f"{code} {record.time:.6f} {record.source} {seqno}")

    def write(self, path: PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(self.lines) + ("\n" if self.lines else ""))
        return path
