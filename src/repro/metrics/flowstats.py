"""Per-flow statistics collector.

:class:`FlowStats` plugs into a sender as its
:class:`~repro.tcp.base.SenderObserver` and records everything the
experiments need: the cumulative-ACK time series (goodput), the send
trace (for sequence plots), cwnd samples, timeouts and recovery
episodes.  Drops *observed in the network* are counted separately by
subscribing to ``link.drop`` / ``link.injected_drop`` trace records.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sim.tracing import TraceBus, TraceRecord
from repro.tcp.base import SenderObserver, TcpSender


@dataclass
class RecoveryEpisode:
    """One stay in the congestion-recovery phase."""

    enter_time: float
    enter_ack: int         # snd_una when recovery started
    recover: int           # original exit threshold (maxseq at entry)
    exit_time: Optional[float] = None
    exit_ack: Optional[int] = None

    @property
    def duration(self) -> Optional[float]:
        if self.exit_time is None:
            return None
        return self.exit_time - self.enter_time


@dataclass
class FlowStats(SenderObserver):
    """Collects one flow's sender-side events."""

    flow_id: int = 0
    start_time: Optional[float] = None
    complete_time: Optional[float] = None

    # (time, ackno) at every cumulative-ACK advance
    ack_series: List[Tuple[float, int]] = field(default_factory=list)
    # (time, seqno, retransmit_flag) for every transmission
    send_series: List[Tuple[float, int, bool]] = field(default_factory=list)
    # (time, cwnd)
    cwnd_series: List[Tuple[float, float]] = field(default_factory=list)
    timeout_times: List[float] = field(default_factory=list)
    episodes: List[RecoveryEpisode] = field(default_factory=list)
    dupacks_seen: int = 0
    drops_observed: int = 0
    drop_times: List[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    # SenderObserver hooks
    # ------------------------------------------------------------------
    def on_start(self, t: float, sender: TcpSender) -> None:
        self.start_time = t

    def on_send(self, t: float, sender: TcpSender, seqno: int, retransmit: bool) -> None:
        self.send_series.append((t, seqno, retransmit))

    def on_ack(self, t: float, sender: TcpSender, ackno: int, duplicate: bool) -> None:
        if duplicate:
            self.dupacks_seen += 1
        else:
            self.ack_series.append((t, ackno))

    def on_cwnd(self, t: float, sender: TcpSender, cwnd: float) -> None:
        self.cwnd_series.append((t, cwnd))

    def on_timeout(self, t: float, sender: TcpSender) -> None:
        self.timeout_times.append(t)

    def on_recovery_enter(self, t: float, sender: TcpSender) -> None:
        self.episodes.append(
            RecoveryEpisode(enter_time=t, enter_ack=sender.snd_una, recover=sender.recover)
        )

    def on_recovery_exit(self, t: float, sender: TcpSender) -> None:
        if self.episodes and self.episodes[-1].exit_time is None:
            episode = self.episodes[-1]
            episode.exit_time = t
            episode.exit_ack = sender.snd_una

    def on_complete(self, t: float, sender: TcpSender) -> None:
        self.complete_time = t

    # ------------------------------------------------------------------
    # network-side drop accounting (via trace bus)
    # ------------------------------------------------------------------
    def watch_drops(self, trace: TraceBus) -> None:
        """Subscribe to the trace bus and count this flow's data-packet
        drops (queue overflows, RED drops, injected losses)."""
        trace.subscribe("link.drop", self._on_drop_record)
        trace.subscribe("link.injected_drop", self._on_drop_record)

    def _on_drop_record(self, record: TraceRecord) -> None:
        packet = record.fields.get("packet")
        if packet is not None and packet.is_data and packet.flow_id == self.flow_id:
            self.drops_observed += 1
            self.drop_times.append(record.time)

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def timeouts(self) -> int:
        return len(self.timeout_times)

    @property
    def final_ack(self) -> int:
        return self.ack_series[-1][1] if self.ack_series else 0

    def acked_at(self, t: float) -> int:
        """Cumulative ACK level at time ``t`` (stepwise interpolation)."""
        if not self.ack_series:
            return 0
        times = [p[0] for p in self.ack_series]
        i = bisect.bisect_right(times, t) - 1
        return self.ack_series[i][1] if i >= 0 else 0

    def time_ack_reached(self, level: int) -> Optional[float]:
        """First time the cumulative ACK reached ``level`` (None if never)."""
        for t, ackno in self.ack_series:
            if ackno >= level:
                return t
        return None

    def transfer_delay(self) -> Optional[float]:
        if self.start_time is None or self.complete_time is None:
            return None
        return self.complete_time - self.start_time

    def packets_sent(self) -> int:
        return len(self.send_series)

    def retransmissions(self) -> int:
        return sum(1 for _, _, retransmit in self.send_series if retransmit)

    def loss_rate(self) -> float:
        """Observed network drops over packets sent (0 when idle)."""
        sent = self.packets_sent()
        return self.drops_observed / sent if sent else 0.0


@dataclass
class LeanFlowStats(SenderObserver):
    """Scalar-only per-flow statistics for thousand-flow scenes.

    :class:`FlowStats` keeps full time series (and its drop watcher
    subscribes every flow to the trace bus, an O(flows) cost per drop)
    — perfect for the paper's 10-flow plots, ruinous at scene scale.
    This observer keeps the cheap trace features that still identify a
    flow's behavior (final ACK, send/retransmit/timeout counts, last
    cwnd, recovery entries) in O(1) memory per flow; scene-wide drop
    accounting comes from the bottleneck queue counters instead of
    per-flow subscriptions.
    """

    flow_id: int = 0
    start_time: Optional[float] = None
    complete_time: Optional[float] = None
    final_ack: int = 0
    packets_sent: int = 0
    retransmits: int = 0
    dupacks_seen: int = 0
    timeouts: int = 0
    recoveries: int = 0
    last_cwnd: float = 0.0

    def on_start(self, t: float, sender: TcpSender) -> None:
        self.start_time = t

    def on_send(self, t: float, sender: TcpSender, seqno: int, retransmit: bool) -> None:
        self.packets_sent += 1
        if retransmit:
            self.retransmits += 1

    def on_ack(self, t: float, sender: TcpSender, ackno: int, duplicate: bool) -> None:
        if duplicate:
            self.dupacks_seen += 1
        elif ackno > self.final_ack:
            self.final_ack = ackno

    def on_cwnd(self, t: float, sender: TcpSender, cwnd: float) -> None:
        self.last_cwnd = cwnd

    def on_timeout(self, t: float, sender: TcpSender) -> None:
        self.timeouts += 1

    def on_recovery_enter(self, t: float, sender: TcpSender) -> None:
        self.recoveries += 1

    def on_complete(self, t: float, sender: TcpSender) -> None:
        self.complete_time = t
