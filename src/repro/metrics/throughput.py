"""Throughput metrics.

"The performance evaluation is based on effective throughput, which is
a commonly-used metric for end-to-end protocols" (Section 3) —
effective throughput is *goodput*: new data acknowledged per unit time
(retransmissions of already-delivered packets do not count, because the
cumulative ACK only advances on new data).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.metrics.flowstats import FlowStats


def goodput_bps(
    stats: FlowStats,
    t_start: float,
    t_end: float,
    mss_bytes: int = 1000,
) -> float:
    """Goodput (bits/second) of one flow over [t_start, t_end]."""
    if t_end <= t_start:
        raise ConfigurationError("need t_end > t_start")
    acked = stats.acked_at(t_end) - stats.acked_at(t_start)
    return acked * mss_bytes * 8.0 / (t_end - t_start)


def effective_throughput_bps(
    stats: FlowStats,
    mss_bytes: int = 1000,
    until: Optional[float] = None,
) -> float:
    """Whole-connection effective throughput: data acked / elapsed time
    from flow start to completion (or ``until``)."""
    if stats.start_time is None:
        return 0.0
    t_end = until
    if t_end is None:
        t_end = stats.complete_time if stats.complete_time is not None else (
            stats.ack_series[-1][0] if stats.ack_series else None
        )
    if t_end is None or t_end <= stats.start_time:
        return 0.0
    return stats.acked_at(t_end) * mss_bytes * 8.0 / (t_end - stats.start_time)


def loss_recovery_span(stats: FlowStats) -> Optional[Tuple[float, float, int]]:
    """Variant-independent recovery span.

    Works even for Tahoe, which has no recovery *phase*: the span
    starts at the flow's first retransmission (= first loss detection)
    and ends when the cumulative ACK first covers everything that had
    been sent by that moment.  Returns ``(t_start, t_end, target)`` or
    None if no retransmission happened / the target was never reached.
    """
    first_rtx = next(
        ((t, seq) for t, seq, retransmit in stats.send_series if retransmit), None
    )
    if first_rtx is None:
        return None
    t_start = first_rtx[0]
    sent_before = [seq for t, seq, _ in stats.send_series if t <= t_start]
    target = max(sent_before) + 1
    t_end = stats.time_ack_reached(target)
    if t_end is None or t_end <= t_start:
        return None
    return t_start, t_end, target


def loss_recovery_throughput(stats: FlowStats, mss_bytes: int = 1000) -> Optional[float]:
    """Goodput (bits/second) over :func:`loss_recovery_span`."""
    span = loss_recovery_span(stats)
    if span is None:
        return None
    t_start, t_end, _ = span
    return goodput_bps(stats, t_start, t_end, mss_bytes)


def recovery_span_throughput(
    stats: FlowStats,
    episode_index: int = 0,
    mss_bytes: int = 1000,
) -> Optional[float]:
    """Effective throughput *during the congestion-recovery period*
    (the Figure 5 metric).

    The span starts when the sender detects the first loss (recovery
    entry) and ends when the cumulative ACK first reaches the exit
    threshold recorded at entry — i.e. when every packet outstanding at
    the time of the loss has been delivered.  Measuring to this fixed,
    variant-independent target makes schemes comparable even when one
    of them needs a timeout to get there (New-Reno with 6 drops) and
    another strolls through in a few RTTs (RR/SACK).

    Returns bits/second, or None if the episode never completed.
    """
    if episode_index >= len(stats.episodes):
        return None
    episode = stats.episodes[episode_index]
    t_done = stats.time_ack_reached(episode.recover)
    if t_done is None or t_done <= episode.enter_time:
        return None
    acked = stats.acked_at(t_done) - episode.enter_ack
    return acked * mss_bytes * 8.0 / (t_done - episode.enter_time)
