"""The paper's primary contribution: the Robust Recovery (RR) TCP
congestion-recovery algorithm (Wang & Shin, ICDCS 2001)."""

from repro.core.robust_recovery import RobustRecoverySender, RrPhase

__all__ = ["RobustRecoverySender", "RrPhase"]
