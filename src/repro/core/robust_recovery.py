"""Robust Recovery (RR) — the paper's contribution.

RR replaces fast recovery with a two-sub-phase scheme driven by an
accurate estimate of the data actually in flight (Section 2):

**Entry** (fast retransmit, Fig. 2): on the third duplicate ACK the
sender records the exit threshold (``recover = maxseq``), halves
``ssthresh``, retransmits the first lost packet — and *leaves cwnd
untouched*: congestion control during recovery is handed to ``actnum``.

**Retreat sub-phase** (first RTT only): exponential back-off, exactly
one new packet per two duplicate ACKs (like New-Reno's first RTT);
``actnum`` stays 0 — the test ``actnum == 0`` is how the sender
distinguishes the sub-phases.  The retreat ends at the first
non-duplicate ACK, when ``actnum := ndup/2`` (the number of new packets
sent during the retreat, i.e. what is now in flight) and control
transfers to ``actnum``.

**Probe sub-phase** (each subsequent RTT, delimited by partial ACKs):
every duplicate ACK triggers one new data packet, so ``ndup`` — the
count of duplicate ACKs this RTT — equals the number of last-RTT new
packets that *arrived*.  At the RTT boundary (a partial ACK):

* ``ndup == actnum``  → no further loss: ``actnum += 1`` and one extra
  new packet goes out (linear growth, congestion-avoidance-like);
* ``ndup <  actnum``  → further data loss, detected *without* another
  fast retransmit or timeout: ``actnum := ndup`` (linear shrink — the
  burst was already answered by the retreat's exponential back-off) and
  the exit threshold advances to the current ``maxseq`` so the new
  losses are repaired before leaving recovery.

Either way the partial ACK's hole is retransmitted immediately.

**Exit** (a new ACK at or beyond ``recover``): control returns to
``cwnd = actnum × MSS`` (packet units: ``cwnd = actnum``).  Because
that value is an accurate in-flight count, the exit ACK clocks out a
single new packet — the "big ACK" burst of New-Reno/SACK is eliminated
and no ``maxburst`` clamp is needed.  We additionally set
``ssthresh = max(2, actnum)`` so the sender continues in congestion
avoidance, realising the paper's "seamlessly switched to congestion
avoidance" (see DESIGN.md for this interpretation choice).

ACK losses (Section 2.3) make ``ndup`` undercount and thus look like
further data losses; the penalty is only the linear shrink — this is
deliberate, and the ablation benchmarks quantify it.  Retransmission
losses are handled by the usual RTO (go-back-N in the base class).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.net.packet import Packet
from repro.tcp.base import TcpSender


class RrPhase(enum.Enum):
    """RR sender phase (Fig. 1 of the paper)."""

    NORMAL = "normal"      # slow start / congestion avoidance
    RETREAT = "retreat"    # first RTT of recovery: exponential back-off
    PROBE = "probe"        # later RTTs: linear probing for equilibrium


class RobustRecoverySender(TcpSender):
    """TCP sender using the paper's Robust Recovery algorithm.

    Public state mirroring Table 2 of the paper:

    Attributes
    ----------
    actnum:
        Number of new data packets in flight during recovery — the
        congestion-control variable while recovering (0 in retreat).
    ndup:
        Duplicate ACKs received in the current recovery RTT.
    recover:
        Exit threshold (inherited from the base class); advanced when
        further losses are detected.
    phase:
        Current :class:`RrPhase`.
    """

    variant = "rr"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.phase = RrPhase.NORMAL
        self.actnum: int = 0
        self.ndup: int = 0
        self._retreat_sent: int = 0
        # New-data packets actually sent in the current recovery RTT
        # and in the one before it.  A packet sent during RTT k returns
        # its duplicate ACK during RTT k+1, so the further-loss test at
        # the k+1 boundary compares ndup against the *previous* RTT's
        # sends.  That count equals actnum whenever the sender is
        # unconstrained (the paper's assumption); it diverges when the
        # receiver window or the application limits sending, in which
        # case we compare against what really went out rather than
        # inventing losses (see DESIGN.md §4).
        self._sent_this_rtt: int = 0
        self._sent_last_rtt: int = 0
        # RFC 2582-style guard against spurious re-entry on duplicate
        # ACKs that are echoes of a previous episode or of go-back-N
        # resends after a timeout (same protection as New-Reno/SACK).
        self._no_retransmit_below = -1
        # Diagnostics for experiments/tests:
        self.further_losses_detected = 0
        self.exit_extensions = 0
        self.recovery_episodes = 0

    # ------------------------------------------------------------------
    # entry: fast retransmit
    # ------------------------------------------------------------------
    def _fast_retransmit(self, packet: Packet) -> None:
        if self.snd_una <= self._no_retransmit_below:
            return  # stale duplicate ACKs from an earlier episode
        # Fig. 2, entry box: recover = maxseq; ssthresh = win/2;
        # retransmit the first lost packet.  cwnd is NOT changed — it is
        # simply out of the control loop until exit.
        self.recover = self.maxseq
        self.ssthresh = self._halved_ssthresh()
        self.phase = RrPhase.RETREAT
        self.actnum = 0
        self.ndup = 0
        self._retreat_sent = 0
        self._sent_this_rtt = 0
        self._sent_last_rtt = 0
        self.recovery_episodes += 1
        self._enter_recovery_common()
        self._emit_rr_state()
        self._retransmit(self.snd_una)
        self._timer.restart(self.rto.current())

    def _emit_rr_state(self) -> None:
        """Publish the RR control variables for online invariant
        checking (``actnum >= 0``, ``recover`` only advances, ...)."""
        self._emit(
            "tcp.rr",
            phase=self.phase.value,
            actnum=self.actnum,
            ndup=self.ndup,
            recover=self.recover,
        )

    # ------------------------------------------------------------------
    # duplicate ACKs
    # ------------------------------------------------------------------
    def _recovery_dupack(self, packet: Packet) -> None:
        self.ndup += 1
        if self.phase is RrPhase.RETREAT:
            # Exponential back-off: one new packet per two duplicate ACKs.
            if self.ndup % 2 == 0:
                self._retreat_sent += self._send_beyond_maxseq()
        else:
            # Probe: each duplicate ACK clocks out one new packet.
            self._send_beyond_maxseq()

    def _send_beyond_maxseq(self) -> int:
        """Send one new data packet (beyond maxseq), if the receiver
        window and the application permit.  Returns packets sent."""
        if self.data_available() and self.flight() < self.config.receiver_window:
            self._send_new()
            self._sent_this_rtt += 1
            return 1
        return 0

    # ------------------------------------------------------------------
    # non-duplicate ACKs during recovery
    # ------------------------------------------------------------------
    def _recovery_new_ack(self, packet: Packet) -> None:
        ackno = packet.ackno
        if self.phase is RrPhase.RETREAT:
            self._end_retreat(ackno)
        elif ackno >= self.recover:
            self._ack_common(ackno)
            self.in_recovery = True
            self._exit_recovery(ackno)
        else:
            self._probe_rtt_boundary(ackno)

    def _end_retreat(self, ackno: int) -> None:
        """First non-duplicate ACK: the retreat sub-phase is over and
        actnum assumes congestion control (Section 2.2.1)."""
        # Paper: actnum = ndup * 1/2, "the number of new data packets
        # sent out during the retreat sub-phase".  When the application
        # ran out of data fewer were actually sent; take the honest
        # in-flight count in that case (see DESIGN.md).
        self.actnum = min(self.ndup // 2, self._retreat_sent)
        self.ndup = 0
        self._emit_rr_state()
        self._ack_common(ackno)
        self.in_recovery = True  # _ack_common leaves it; keep explicit
        if ackno >= self.recover:
            # Single packet loss within the window: recovery is done.
            self._exit_recovery(ackno)
            return
        # Multiple losses: enter the probe sub-phase; the partial ACK
        # triggers an immediate retransmission (Fig. 2).  The retreat's
        # new packets return their duplicates during the first probe
        # RTT, so they are the "last RTT" sends for its boundary test.
        self.phase = RrPhase.PROBE
        self._sent_last_rtt = self._retreat_sent
        self._sent_this_rtt = 0
        self._retransmit(self.snd_una)
        self._timer.restart(self.rto.current())

    def _probe_rtt_boundary(self, ackno: int) -> None:
        """A partial ACK in the probe sub-phase: end of one RTT, start
        of the next (Section 2.2.2/2.2.3)."""
        self._ack_common(ackno)
        self.in_recovery = True
        # What the last RTT really put in flight: actnum when the
        # sender was unconstrained, less when flow-control bound it.
        expected = min(self.actnum, self._sent_last_rtt)
        self._sent_last_rtt = self._sent_this_rtt
        self._sent_this_rtt = 0
        if self.ndup >= expected:
            # No further data loss last RTT: linear growth — increment
            # actnum and send one extra new packet this RTT.  The extra
            # goes out *before* the retransmission so its duplicate ACK
            # returns ahead of the next partial ACK; otherwise ndup
            # would systematically undercount by one and every clean
            # RTT would read as a further loss (the §2.2.3 equality
            # "ndup should be equal to actnum" requires this ordering).
            if self._send_beyond_maxseq():
                self.actnum += 1
            self._retransmit(self.snd_una)
        else:
            # Further data loss: ndup < actnum, the difference being the
            # number of packets lost last RTT.  Linear back-off and
            # extend the exit point to cover the new losses.
            self.further_losses_detected += expected - self.ndup
            self.actnum = self.ndup
            if self.maxseq > self.recover:
                self.recover = self.maxseq
                self.exit_extensions += 1
            self._retransmit(self.snd_una)
        self.ndup = 0
        self._emit_rr_state()
        self._timer.restart(self.rto.current())

    # ------------------------------------------------------------------
    # exit
    # ------------------------------------------------------------------
    def _exit_recovery(self, ackno: int) -> None:
        """Seamless hand-over back to cwnd (Fig. 2 exit box):
        ``cwnd = actnum × MSS`` (packet units: actnum), then actnum
        returns to 0 and congestion avoidance resumes.

        One refinement over the literal formula: at a saturated
        bottleneck the exiting ACK can arrive through an in-order
        staircase that has already drained part of the last RTT's
        sends, leaving ``flight < actnum``.  Setting cwnd to the raw
        actnum would then release a burst — the very "big ACK problem"
        RR sets out to eliminate.  Since §2.2.3's justification is that
        "the reset value of cwnd accurately measures the amount of data
        packets in flight", we cap the hand-over at flight+1 (identical
        to actnum whenever the idealised Fig.-3 timing holds)."""
        self.cwnd = float(max(1, min(self.actnum, self.flight() + 1)))
        # ssthresh is NOT touched — the Fig. 2 exit box only reassigns
        # cwnd.  It keeps the value halved at entry (win/2), so in the
        # paper's regime (actnum ~ win/2) the sender continues straight
        # into congestion avoidance ("seamlessly switched"), while after
        # a lossy recovery that left actnum small it slow-starts back up
        # to the halved level exactly as New-Reno/SACK would.
        self.actnum = 0
        self.ndup = 0
        self.phase = RrPhase.NORMAL
        # Guard against stale-duplicate re-entry, but — unlike the
        # RFC 2582 careful variant New-Reno uses — allow a fresh episode
        # when snd_una sits exactly at the old exit point: that is the
        # signature of a lost retreat/probe packet (the first new packet
        # sent beyond `recover`), and blocking it trades a rare spurious
        # halving for a guaranteed RTO.  RR's conservative one-rtx-per-
        # partial-ACK recovery makes the stale-duplicate case rare.
        self._no_retransmit_below = self.recover - 1
        self._note_cwnd()
        self._emit_rr_state()
        self._exit_recovery_common()
        # The exiting ACK observes packet conservation: with cwnd equal
        # to the true in-flight count this releases at most one packet.
        self.send_available()

    # ------------------------------------------------------------------
    # timeout
    # ------------------------------------------------------------------
    def _on_timeout_reset(self) -> None:
        # Retransmission losses are handled by timeouts "as is usually
        # done" (Section 1): collapse to slow start, abandon RR state.
        self.in_recovery = False
        self.phase = RrPhase.NORMAL
        self.actnum = 0
        self.ndup = 0
        self._no_retransmit_below = self.maxseq - 1
        self.recover = self.snd_una
