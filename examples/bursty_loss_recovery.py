"""Bursty-loss recovery: the paper's headline scenario, both ways.

Part 1 — deterministic: exactly N packets of one window are dropped
(how the Figure 5 harness works) and every recovery scheme races
through the same situation; an ASCII sequence plot shows RR's probe
sub-phase keeping data flowing while New-Reno crawls.

Part 2 — emergent: the paper's original methodology, three flows
squeezed through an 8-packet drop-tail buffer so the bursty losses
arise from real queue overflow ("the buffer size is set to achieve the
desired packet loss pattern", Section 3.2).

Run:  python examples/bursty_loss_recovery.py
"""

from repro import DumbbellParams, TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.metrics.throughput import loss_recovery_span, loss_recovery_throughput
from repro.metrics.timeseries import SequenceTracer
from repro.net.loss import DeterministicLoss
from repro.viz.ascii import ascii_scatter, format_table

BURST = 6  # packets dropped within one window
VARIANTS = ["tahoe", "newreno", "sack", "rr"]


def deterministic_part() -> None:
    print(f"=== Part 1: deterministic {BURST}-packet burst ===\n")
    rows = []
    traces = {}
    for variant in VARIANTS:
        loss = DeterministicLoss([(1, 100 + i) for i in range(BURST)])
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant=variant, amount_packets=600)],
            params=DumbbellParams(n_pairs=1, buffer_packets=25),
            default_config=TcpConfig(receiver_window=64, initial_ssthresh=20.0),
            forward_loss=loss,
        )
        scenario.sim.run(until=60.0)
        sender, stats = scenario.flow(1)
        span = loss_recovery_span(stats)
        throughput = loss_recovery_throughput(stats)
        rows.append(
            [
                variant,
                f"{throughput / 1000:.0f}" if throughput else "-",
                f"{span[1] - span[0]:.2f}" if span else "-",
                sender.timeouts,
                f"{sender.complete_time:.2f}",
            ]
        )
        traces[variant] = (stats, span)
    print(format_table(
        ["scheme", "recovery kbps", "recovery s", "RTOs", "done at s"], rows
    ))

    # Zoom into the recovery window of the extremes.
    for variant in ("newreno", "rr"):
        stats, span = traces[variant]
        if span is None:
            continue
        t0, t1, _ = span
        trace = SequenceTracer(stats).trace(t0 - 0.1, t1 + 0.3)
        print()
        print(
            ascii_scatter(
                {"send": trace.sends, "rtx": trace.retransmits, "ack": trace.acks},
                title=f"--- {variant}: the recovery window, zoomed ---",
                x_label="time (s)",
                y_label="packet",
                height=14,
            )
        )


def emergent_part() -> None:
    print("\n=== Part 2: emergent losses (paper's 3-flow, 8-packet buffer) ===\n")
    rows = []
    for variant in VARIANTS:
        # Flow 1 has a bounded file; flows 2-3 are background, exactly
        # as in Section 3.2.
        flows = [FlowSpec(variant=variant, amount_packets=150)]
        flows += [
            FlowSpec(variant=variant, amount_packets=None, start_time=0.1),
            FlowSpec(variant=variant, amount_packets=None, start_time=0.2),
        ]
        scenario = build_dumbbell_scenario(
            flows=flows,
            params=DumbbellParams(n_pairs=3, buffer_packets=8),
        )
        scenario.sim.run(until=120.0)
        sender, stats = scenario.flow(1)
        rows.append(
            [
                variant,
                f"{sender.complete_time:.2f}" if sender.complete_time else "DNF",
                stats.drops_observed,
                sender.retransmits,
                sender.timeouts,
            ]
        )
    print(format_table(
        ["scheme", "flow-1 done at s", "drops", "rtx", "RTOs"], rows
    ))
    print("\n(drops here come from real queue overflow, not injection)")


if __name__ == "__main__":
    deterministic_part()
    emergent_part()
