"""RED gateway dynamics: the Figure-6 experiment as a live demo.

Ten flows share a 0.8 Mb/s bottleneck behind a RED gateway configured
exactly as the paper's Table 4 (min 5, max 20, max_p 0.02, w_q 0.002,
buffer 25).  Each run uses one recovery scheme for every flow; flow 1's
sequence-number trace is plotted, New-Reno's stall and RR's steady ramp
side by side.

Run:  python examples/red_gateway_dynamics.py [seed]
"""

import sys

from repro.experiments.figure6 import Figure6Config, run_variant
from repro.viz.ascii import ascii_scatter, format_table


def main(seed: int = 7) -> None:
    config = Figure6Config(seed=seed)
    results = {}
    for variant in ("newreno", "sack", "rr"):
        results[variant] = run_variant(variant, config)

    rows = []
    for variant, flow in results.items():
        rows.append(
            [
                variant,
                flow.final_ack,
                f"{flow.throughput_bps / 1000:.0f}",
                flow.timeouts,
                f"{flow.longest_stall:.2f}",
            ]
        )
    print(f"RED gateway, 10 flows, 6 s, seed={seed} (flow 1 shown)\n")
    print(format_table(
        ["scheme", "final packet", "kbps", "RTOs", "longest stall s"], rows
    ))

    for variant, flow in results.items():
        print()
        print(
            ascii_scatter(
                {
                    "send": flow.trace.sends,
                    "rtx": flow.trace.retransmits,
                    "ack": flow.trace.acks,
                },
                title=f"--- {variant} ---",
                x_label="time (s)",
                y_label="packet number",
                height=14,
            )
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
