"""A busy server's worth of short transfers — the deployment story.

The paper's pitch is that only *servers* need modification ("only the
servers in the Internet need to be modified slightly, while keeping
intact millions of TCP clients").  This example plays that out: a
server farm pushes many short files (a web-like mice workload, cf. the
paper's reference [1] on busy-server TCP behaviour) through a congested
bottleneck.  We compare the fleet-wide completion times when the
servers run Reno vs Robust Recovery — the receivers are plain TCP
clients in both runs, unlike a SACK upgrade which would require
touching every client.

Run:  python examples/busy_web_server.py
"""

from typing import List

from repro import DumbbellParams
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.metrics.fairness import jain_index
from repro.viz.ascii import format_table

N_TRANSFERS = 16
FILE_PACKETS = 60          # ~60 KB objects
STAGGER = 0.4              # a new request every 400 ms


def run_fleet(variant: str):
    flows = [
        FlowSpec(
            variant=variant,
            amount_packets=FILE_PACKETS,
            start_time=i * STAGGER,
        )
        for i in range(N_TRANSFERS)
    ]
    scenario = build_dumbbell_scenario(
        flows=flows,
        params=DumbbellParams(n_pairs=N_TRANSFERS, buffer_packets=12),
    )
    scenario.sim.run(until=600.0)
    delays: List[float] = []
    timeouts = 0
    retransmits = 0
    for flow_id in range(1, N_TRANSFERS + 1):
        sender = scenario.senders[flow_id]
        source = scenario.sources[flow_id]
        assert sender.completed, f"transfer {flow_id} did not finish"
        delays.append(source.transfer_delay)
        timeouts += sender.timeouts
        retransmits += sender.retransmits
    return delays, timeouts, retransmits


def main() -> None:
    print(
        f"{N_TRANSFERS} transfers of {FILE_PACKETS} KB each, staggered"
        f" {STAGGER}s apart, 0.8 Mb/s bottleneck, 12-packet buffer\n"
    )
    rows = []
    for variant in ("reno", "newreno", "rr"):
        delays, timeouts, retransmits = run_fleet(variant)
        delays.sort()
        n = len(delays)
        rows.append(
            [
                variant,
                f"{sum(delays) / n:.1f}",
                f"{delays[n // 2]:.1f}",
                f"{delays[-1]:.1f}",
                timeouts,
                retransmits,
                f"{jain_index(delays):.3f}",
            ]
        )
    print(format_table(
        ["server stack", "mean s", "median s", "worst s", "RTOs", "rtx", "delay Jain"],
        rows,
    ))
    print(
        "\nOnly the server side changed between rows — every client ran the"
        "\nsame plain TCP receiver (the RR deployment argument; a SACK"
        "\nupgrade would have required modifying all of them)."
    )


if __name__ == "__main__":
    main()
