"""Beyond the paper: the extension mechanisms, side by side.

Three mini-studies using machinery the paper references but does not
evaluate:

1. **Vegas decomposition** (§1 / ref [8]) — is Vegas' gain really in
   its recovery techniques rather than its delay-based CA?
2. **Smooth-start** (§1 / ref [21]) — does a gentler slow-start ramp
   reduce the very loss bursts RR is built to survive, and do the two
   compose?
3. **ECN** — with marking instead of dropping at the RED gateway, how
   much recovery work disappears entirely?

Run:  python examples/beyond_the_paper.py
"""

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.experiments.vegas_decomposition import (
    VegasDecompositionConfig,
    format_report,
    run_vegas_decomposition,
)
from repro.net.red import RedParams, RedQueue
from repro.net.topology import DumbbellParams
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream
from repro.viz.ascii import format_table


def vegas_study() -> None:
    print("=" * 70)
    print(format_report(run_vegas_decomposition(VegasDecompositionConfig())))


def smooth_start_study() -> None:
    print("=" * 70)
    print("Smooth-start (ref [21]) composed with each recovery scheme")
    print("(200-packet transfer into the paper's tiny 8-packet buffer)\n")
    rows = []
    for variant in ("reno", "ss-reno", "newreno", "ss-newreno", "rr", "ss-rr"):
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant=variant, amount_packets=200)],
            params=DumbbellParams(n_pairs=1, buffer_packets=8),
        )
        scenario.sim.run(until=60.0)
        sender, stats = scenario.flow(1)
        rows.append(
            [
                variant,
                f"{sender.complete_time:.2f}",
                stats.drops_observed,
                sender.retransmits,
                sender.timeouts,
            ]
        )
    print(format_table(["scheme", "done at s", "drops", "rtx", "RTOs"], rows))
    print("\n(ss-* rows: the tapered ramp sheds the slow-start overshoot"
          "\n losses before recovery ever has to deal with them)")


def ecn_study() -> None:
    print("=" * 70)
    print("ECN at the RED gateway: marks replace early drops\n")
    rows = []
    for label, ecn in (("drop (classic RED)", False), ("mark (ECN RED)", True)):
        sim = Simulator()
        rng = RngStream(11, f"red-{ecn}")
        # Deep buffer + fast-moving average: congestion is signalled by
        # RED's early action, not by buffer overflow.
        params = RedParams(
            ecn=ecn, weight=0.05, min_th=5, max_th=15, max_p=0.1, limit=60
        )
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="newreno", amount_packets=500)],
            params=DumbbellParams(n_pairs=1, buffer_packets=60),
            default_config=TcpConfig(ecn_enabled=ecn),
            bottleneck_queue_factory=lambda name: RedQueue(
                sim, params, rng.substream(name), name=name
            ),
            sim=sim,
        )
        scenario.sim.run(until=120.0)
        sender, stats = scenario.flow(1)
        queue = scenario.dumbbell.bottleneck_queue
        rows.append(
            [
                label,
                f"{sender.complete_time:.2f}",
                stats.drops_observed,
                queue.ecn_marks,
                sender.retransmits,
                sender.ecn_reactions,
            ]
        )
    print(format_table(
        ["gateway", "done at s", "drops", "marks", "rtx", "ECN backoffs"], rows
    ))
    print("\n(every mark row in the table is a congestion signal that cost"
          "\n zero retransmissions — the more of RED's action happens as"
          "\n marks, the less recovery work is left for RR to optimise)")


if __name__ == "__main__":
    vegas_study()
    smooth_start_study()
    ecn_study()
