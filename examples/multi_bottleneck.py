"""Multi-bottleneck recovery: the parking-lot topology.

A long flow crosses three 0.8 Mb/s bottlenecks in a row while a cross
flow loads each hop.  The long path sees correlated congestion at
several points — loss bursts can span hops — and collects the classic
parking-lot penalty (it competes everywhere, so AIMD gives it less than
a per-hop fair share).  We compare how each recovery scheme carries the
long flow through it.

Run:  python examples/multi_bottleneck.py
"""

from repro.app.ftp import FtpSource
from repro.metrics.flowstats import FlowStats
from repro.net.parkinglot import ParkingLot, ParkingLotParams
from repro.sim.engine import Simulator
from repro.tcp.factory import make_connection
from repro.viz.ascii import format_table

N_HOPS = 3
DURATION = 40.0


def run(variant: str):
    sim = Simulator()
    lot = ParkingLot(sim, ParkingLotParams(n_hops=N_HOPS, buffer_packets=15))
    long_stats = FlowStats(flow_id=1)
    long_stats.watch_drops(lot.net.trace)
    long_sender, _ = make_connection(
        sim, variant, 1, lot.long_src, lot.long_dst, observer=long_stats
    )
    FtpSource(sim, long_sender, amount_packets=None)
    cross = []
    for hop in range(1, N_HOPS + 1):
        src, dst = lot.cross_pair(hop)
        stats = FlowStats(flow_id=hop + 1)
        sender, _ = make_connection(sim, variant, hop + 1, src, dst, observer=stats)
        FtpSource(sim, sender, amount_packets=None, start_time=0.1 * hop)
        cross.append(stats)
    sim.run(until=DURATION)
    cross_mean = sum(s.final_ack for s in cross) / len(cross)
    return {
        "long_kbps": long_stats.final_ack * 8.0 / DURATION,
        "cross_kbps": cross_mean * 8.0 / DURATION,
        "long_drops": long_stats.drops_observed,
        "timeouts": long_sender.timeouts,
    }


def main() -> None:
    print(
        f"parking lot: {N_HOPS} bottlenecks of 0.8 Mb/s, one long flow +"
        f" one cross flow per hop, {DURATION:.0f}s\n"
    )
    rows = []
    for variant in ("reno", "newreno", "sack", "rr"):
        data = run(variant)
        rows.append(
            [
                variant,
                f"{data['long_kbps']:.0f}",
                f"{data['cross_kbps']:.0f}",
                f"{data['long_kbps'] / data['cross_kbps']:.2f}",
                data["long_drops"],
                data["timeouts"],
            ]
        )
    print(
        format_table(
            [
                "scheme",
                "long-flow kbps",
                "cross mean kbps",
                "long/cross",
                "long drops",
                "long RTOs",
            ],
            rows,
        )
    )
    print(
        "\n(the long/cross ratio below 1.0 is the parking-lot penalty —"
        "\n robust recovery helps the long flow survive its multi-hop loss"
        "\n exposure, but cannot repeal AIMD's multi-bottleneck bias)"
    )


if __name__ == "__main__":
    main()
