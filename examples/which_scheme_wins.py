"""Which recovery scheme wins on *your* path?

The analysis API sweeps variants × seeds over any declarative scenario
and ranks them with confidence intervals.  Here: a 300-packet transfer
over three different path characters —

* a clean, congestion-only path (losses are self-inflicted overflow),
* a moderately lossy random channel (2% i.i.d.),
* a bursty channel at the same average rate (Gilbert-Elliott).

Run:  python examples/which_scheme_wins.py
"""

from repro.analysis import ComparisonConfig, compare_variants, format_comparison

BASE = {
    "topology": {"n_pairs": 1, "buffer_packets": 25,
                 "bottleneck_bandwidth_mbps": 0.8, "bottleneck_delay_ms": 50},
    "tcp": {"receiver_window": 64},
    "flows": [{"variant": "rr", "packets": 300}],
    "duration": 300.0,
}

PATHS = {
    "clean (overflow only)": {},
    "random loss 2%": {"loss": {"kind": "uniform", "rate": 0.02}},
    "bursty loss 2% (GE)": {
        "loss": {"kind": "gilbert-elliott", "p_good_to_bad": 0.0135,
                 "p_bad_to_good": 0.33, "p_bad": 0.5}
    },
}


def main() -> None:
    for label, extra in PATHS.items():
        scenario = {**BASE, **extra}
        config = ComparisonConfig(
            scenario=scenario,
            variants=("tahoe", "newreno", "sack", "rr"),
            seeds=(1, 2, 3, 4, 5),
        )
        result = compare_variants(config)
        print(f"=== {label} ===")
        print(format_comparison(result))
        print()


if __name__ == "__main__":
    main()
