"""Congestion-window evolution around a loss burst.

Plots cwnd(t) for New-Reno and RR through the same engineered 6-drop
burst.  The visible difference is the paper's core idea: New-Reno's
cwnd gyrates through inflation/deflation during recovery, while RR
*freezes* cwnd (control belongs to actnum) and reassigns it once, at
the exit, to an accurate in-flight count.

Run:  python examples/cwnd_evolution.py
"""

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.metrics.throughput import loss_recovery_span
from repro.net.loss import DeterministicLoss
from repro.net.topology import DumbbellParams
from repro.viz.ascii import ascii_step_series


def run(variant: str):
    loss = DeterministicLoss([(1, 100 + i) for i in range(6)])
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=600)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
        default_config=TcpConfig(receiver_window=64, initial_ssthresh=20.0),
        forward_loss=loss,
    )
    scenario.sim.run(until=8.0)
    return scenario.flow(1)


def main() -> None:
    for variant in ("newreno", "rr"):
        sender, stats = run(variant)
        span = loss_recovery_span(stats)
        window = [
            (t, cwnd)
            for t, cwnd in stats.cwnd_series
            if span and span[0] - 0.6 <= t <= span[1] + 1.5
        ]
        print(
            ascii_step_series(
                window,
                title=f"--- {variant}: cwnd through the 6-drop burst ---",
                y_label="cwnd (packets)",
                height=12,
            )
        )
        if span:
            print(f"recovery span: {span[0]:.2f}s .. {span[1]:.2f}s\n")
    print(
        "(New-Reno: inflation spikes and full deflations every partial ACK;"
        "\n RR: cwnd silent during recovery — actnum is in control — then one"
        "\n clean hand-over at exit)"
    )


if __name__ == "__main__":
    main()
