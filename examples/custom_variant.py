"""Extending the library: build, run and evaluate your own variant.

The future-work question this answers: RR's probe sub-phase grows
``actnum`` by one packet per RTT — what if it probed more aggressively?
We define **RR-AI2** (additive increase of 2 per clean RTT) in ~15
lines, then race it against stock RR on the Figure-5 burst and on a
lossier channel to see both the upside (faster ramp) and the cost (more
self-inflicted drops on the probe path).

Run:  python examples/custom_variant.py
"""

from repro.config import TcpConfig
from repro.core.robust_recovery import RobustRecoverySender
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.metrics.throughput import goodput_bps, loss_recovery_span
from repro.net.loss import DeterministicLoss, GilbertElliott
from repro.net.topology import DumbbellParams
from repro.sim.rng import RngStream
from repro.viz.ascii import format_table


class RrAggressiveProbe(RobustRecoverySender):
    """RR whose clean probe boundaries grow actnum by 2 (one extra
    new packet beyond stock RR's one)."""

    variant = "rr-ai2"

    def _probe_rtt_boundary(self, ackno: int) -> None:
        clean = self.ndup >= min(self.actnum, self._sent_last_rtt)
        super()._probe_rtt_boundary(ackno)
        if clean and self._send_beyond_maxseq():
            self.actnum += 1  # the second increment


def burst_case(sender_cls):
    loss = DeterministicLoss([(1, 100 + i) for i in range(6)])
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant="rr", amount_packets=600)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
        default_config=TcpConfig(receiver_window=64, initial_ssthresh=20.0),
        forward_loss=loss,
        sender_overrides={1: sender_cls} if sender_cls else None,
    )
    scenario.sim.run(until=60.0)
    sender, stats = scenario.flow(1)
    span = loss_recovery_span(stats)
    window = goodput_bps(stats, span[0], span[0] + 2.0) if span else 0.0
    return sender, stats, window


def lossy_case(sender_cls, seed=11):
    channel = GilbertElliott(
        RngStream(seed, "ge"), p_good_to_bad=0.02, p_bad_to_good=0.4, p_bad=0.5
    )
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant="rr", amount_packets=400)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
        forward_loss=channel,
        sender_overrides={1: sender_cls} if sender_cls else None,
    )
    scenario.sim.run(until=300.0)
    return scenario.flow(1)


def main() -> None:
    rows = []
    for label, cls in (("rr (stock)", None), ("rr-ai2", RrAggressiveProbe)):
        sender, stats, window = burst_case(cls)
        lossy_sender, lossy_stats = lossy_case(cls)
        rows.append(
            [
                label,
                f"{window / 1000:.0f}",
                sender.timeouts,
                f"{lossy_sender.complete_time:.1f}",
                lossy_stats.drops_observed,
                lossy_sender.timeouts,
            ]
        )
    print("custom probe policy: additive increase of 2/RTT during recovery\n")
    print(
        format_table(
            [
                "variant",
                "burst 2s-window kbps",
                "burst RTOs",
                "lossy done at s",
                "lossy drops",
                "lossy RTOs",
            ],
            rows,
        )
    )
    print(
        "\n(faster probing buys nothing — it can even lose: the second"
        "\n growth packet goes out after the boundary retransmission, so its"
        "\n duplicate ACK lands behind the next partial ACK and reads as a"
        "\n further loss, shrinking actnum right back.  RR's accounting is"
        "\n delicately phase-aligned; the paper's +1/RTT, mirroring"
        "\n congestion avoidance, is the natural fixed point.)"
    )


if __name__ == "__main__":
    main()
