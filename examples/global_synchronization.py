"""Global synchronization: why the paper's Section 3.3 reaches for RED.

Six Reno flows share a drop-tail bottleneck: they fill the buffer
together, lose together at the overflow instant, halve together, and
leave the link idle together — the classic pathology of the paper's
reference [22].  The same fleet behind a RED gateway desynchronises.

The example measures it three ways:

* the **loss-synchronization index** (fraction of loss events hitting
  2+ flows at once),
* **bottleneck starvation valleys** (long empty-queue periods), and
* an ASCII **queue-occupancy plot** where the sawtooth of
  synchronisation is visible to the eye.

Run:  python examples/global_synchronization.py
"""

from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.metrics.queuemon import QueueMonitor
from repro.metrics.sync import loss_synchronization_index, mean_flows_per_event
from repro.net.red import RedParams, RedQueue
from repro.net.topology import DumbbellParams
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream
from repro.viz.ascii import ascii_scatter, format_table

N_FLOWS = 6
DURATION = 30.0


def run(gateway: str):
    sim = Simulator()
    kwargs = {}
    if gateway == "red":
        rng = RngStream(5, "red")
        # RED thresholds scaled to the same 12-packet physical buffer
        # as the drop-tail run.
        red_params = RedParams(weight=0.02, min_th=3, max_th=9, limit=12)
        kwargs["bottleneck_queue_factory"] = lambda name: RedQueue(
            sim, red_params, rng.substream(name), name=name
        )
        kwargs["sim"] = sim
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant="reno", amount_packets=None) for _ in range(N_FLOWS)],
        params=DumbbellParams(n_pairs=N_FLOWS, buffer_packets=12),
        **kwargs,
    )
    monitor = QueueMonitor(scenario.sim, scenario.dumbbell.bottleneck_queue, period=0.02)
    scenario.sim.run(until=DURATION)
    drops = {flow_id: stats.drop_times for flow_id, stats in scenario.stats.items()}
    goodput = sum(stats.final_ack for stats in scenario.stats.values())
    return {
        "sync_index": loss_synchronization_index(drops),
        "flows_per_event": mean_flows_per_event(drops),
        "valleys": monitor.empty_periods(min_duration=0.1),
        "utilisation": monitor.utilisation_proxy(),
        "total_goodput_kbps": goodput * 8.0 / DURATION,
        "occupancy": monitor.samples,
    }


def main() -> None:
    results = {gateway: run(gateway) for gateway in ("droptail", "red")}

    rows = []
    for gateway, data in results.items():
        rows.append(
            [
                gateway,
                f"{data['sync_index']:.2f}",
                f"{data['flows_per_event']:.2f}",
                len(data["valleys"]),
                f"{data['utilisation']:.2f}",
                f"{data['total_goodput_kbps']:.0f}",
            ]
        )
    print(f"{N_FLOWS} Reno flows, 0.8 Mb/s bottleneck, {DURATION:.0f}s\n")
    print(
        format_table(
            [
                "gateway",
                "sync index",
                "flows/loss-event",
                "starvation valleys",
                "busy fraction",
                "fleet kbps",
            ],
            rows,
        )
    )

    for gateway, data in results.items():
        window = [(t, q) for t, q in data["occupancy"] if 5.0 <= t <= 15.0]
        print()
        print(
            ascii_scatter(
                {"queue": window},
                title=f"--- bottleneck occupancy, {gateway} (t=5..15s) ---",
                x_label="time (s)",
                y_label="packets queued",
                height=12,
            )
        )
    print(
        "\n(the paper's §3.3 point: drop-tail losses strike many flows at"
        "\n once — high sync index, deep coordinated valleys; RED randomises"
        "\n the drops and keeps the buffer, and therefore the link, busy)"
    )


if __name__ == "__main__":
    main()
