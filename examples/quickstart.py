"""Quickstart: one Robust Recovery TCP flow over the paper's dumbbell.

Builds the Figure-4 topology, runs a 200-packet FTP transfer with the
RR sender, and prints what happened.  Swap ``VARIANT`` for any of
tahoe / reno / newreno / sack / rr / rightedge / linkung to compare.

Run:  python examples/quickstart.py
"""

from repro import (
    Dumbbell,
    DumbbellParams,
    FlowStats,
    FtpSource,
    Simulator,
    make_connection,
)

VARIANT = "rr"


def main() -> None:
    sim = Simulator()
    # Paper Table 3 defaults: 0.8 Mb/s bottleneck, 10 Mb/s side links,
    # 8-packet drop-tail buffer.
    bell = Dumbbell(sim, DumbbellParams(n_pairs=1))

    stats = FlowStats(flow_id=1)
    stats.watch_drops(bell.net.trace)
    sender, receiver = make_connection(
        sim, VARIANT, 1, bell.sender(1), bell.receiver(1), observer=stats
    )
    ftp = FtpSource(sim, sender, amount_packets=200)

    sim.run(until=60.0)

    print(f"variant          : {sender.variant}")
    print(f"completed        : {sender.completed} at t={sender.complete_time:.2f}s")
    print(f"packets sent     : {sender.packets_sent} "
          f"({sender.retransmits} retransmissions)")
    print(f"drops at queue   : {stats.drops_observed}")
    print(f"timeouts         : {sender.timeouts}")
    print(f"recovery episodes: {len(stats.episodes)}")
    for index, episode in enumerate(stats.episodes, 1):
        print(
            f"  episode {index}: entered t={episode.enter_time:.2f}s,"
            f" exited t={episode.exit_time:.2f}s"
            f" ({episode.duration:.3f}s, ack {episode.enter_ack} ->"
            f" {episode.exit_ack})"
        )
    goodput = 200 * 1000 * 8 / sender.complete_time
    print(f"effective throughput: {goodput / 1000:.1f} kbps "
          f"(bottleneck is 800 kbps)")


if __name__ == "__main__":
    main()
