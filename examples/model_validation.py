"""Validating analytical TCP models against the simulator (Section 4).

Sweeps the uniform loss rate for a single RR flow with RTT = 200 ms,
then lines the measured throughput up against two models:

* Mathis et al.'s square-root law (no timeouts) — an upper bound that
  the measurements fall away from as losses get heavy, and
* Padhye et al.'s full model (with timeouts) — which the paper cites as
  the more accurate successor; our measurements should track it much
  further.

Run:  python examples/model_validation.py
"""

from repro.experiments.figure7 import Figure7Config, run_point
from repro.models.mathis import mathis_bandwidth_bps, mathis_window
from repro.models.padhye import padhye_bandwidth_bps
from repro.viz.ascii import ascii_scatter, format_table

LOSS_RATES = (0.005, 0.01, 0.02, 0.05, 0.1)
RTT = 0.2
MSS = 1000


def main() -> None:
    config = Figure7Config(loss_rates=LOSS_RATES, duration=60.0, runs_per_point=2)
    rows = []
    measured = []
    for p in LOSS_RATES:
        point = run_point("rr", p, config)
        mathis = mathis_bandwidth_bps(p, RTT, MSS)
        padhye = padhye_bandwidth_bps(p, RTT, rto=1.0, mss_bytes=MSS)
        rows.append(
            [
                f"{p:.3f}",
                f"{point.throughput_bps / 1000:.0f}",
                f"{mathis / 1000:.0f}",
                f"{padhye / 1000:.0f}",
                f"{point.timeouts:.1f}",
            ]
        )
        measured.append((p, point.window))
    print("RR flow, RTT 200 ms, uniform random loss\n")
    print(format_table(
        ["p", "measured kbps", "Mathis kbps", "Padhye kbps", "RTOs/run"], rows
    ))
    print()
    print(
        ascii_scatter(
            {
                "mathis-bound": [(p, mathis_window(p)) for p in LOSS_RATES],
                "measured": measured,
            },
            title="window vs loss rate (packets)",
            x_label="loss rate",
            y_label="W",
            height=14,
        )
    )
    print(
        "\nShape check (paper §4): measurements hug the square-root bound at"
        "\nsmall p and fall below it as timeouts appear; the Padhye model,"
        "\nwhich accounts for those timeouts, stays close throughout."
    )


if __name__ == "__main__":
    main()
