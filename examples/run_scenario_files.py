"""Run the bundled JSON scenario files (or your own).

Scenarios are plain JSON (schema in
``repro/experiments/scenario_file.py``); this driver runs each file and
prints the per-flow summary.

Run:  python examples/run_scenario_files.py [scenario.json ...]
"""

import json
import sys
from pathlib import Path

from repro.experiments.scenario_file import run_scenario_file, summarize_scenario
from repro.viz.ascii import format_table

BUNDLED = sorted((Path(__file__).parent / "scenarios").glob("*.json"))


def run_one(path: Path) -> None:
    spec = json.loads(path.read_text())
    print(f"=== {path.name} ===")
    if "comment" in spec:
        print(spec["comment"])
    scenario = run_scenario_file(path)
    summary = summarize_scenario(scenario)
    rows = []
    for flow_id, flow in sorted(summary["flows"].items(), key=lambda kv: int(kv[0])):
        rows.append(
            [
                f"{flow_id} ({flow['variant']})",
                "yes" if flow["completed"] else "no",
                f"{flow['complete_time']:.2f}" if flow["complete_time"] else "-",
                flow["final_ack"],
                flow["retransmits"],
                flow["timeouts"],
                flow["drops_observed"],
            ]
        )
    print(
        format_table(
            ["flow", "done", "at s", "acked", "rtx", "RTOs", "drops"], rows
        )
    )
    print()


def main() -> None:
    paths = [Path(p) for p in sys.argv[1:]] or BUNDLED
    for path in paths:
        run_one(path)


if __name__ == "__main__":
    main()
