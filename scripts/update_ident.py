#!/usr/bin/env python
"""Regenerate the identification artifacts.

Two files, always together (they must agree on the model digest):

* ``src/repro/ident/reference_model.json`` — the nearest-centroid
  reference classifier fitted over the training grid; ships inside the
  package so the CLI/chaos/golden consumers load identical bytes.
* ``tests/golden/behavior_classes.json`` — the held-out feature
  vectors, per-run verdicts and the confusion matrix; the
  behavior-class regression gate checks the committed vectors
  bit-exactly against a rerun.

Run this ONLY after an intentional behavior change to a TCP variant
(or to the feature definitions / grids).  Review the diff the same way
as the golden digests: a change in one variant's vectors should touch
only that variant's block.

Usage: PYTHONPATH=src python scripts/update_ident.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.ident.classify import NearestCentroidClassifier  # noqa: E402
from repro.ident.dataset import (  # noqa: E402
    HELDOUT_GRID,
    IDENT_VARIANTS,
    collect_grid,
    fit_reference_classifier,
)
from repro.ident.oracle import MIN_MARGIN, reference_model_path  # noqa: E402


def build_behavior_classes(model: NearestCentroidClassifier) -> dict:
    confusion = {v: {w: 0 for w in IDENT_VARIANTS} for v in IDENT_VARIANTS}
    vectors: dict = {v: {} for v in IDENT_VARIANTS}
    for variant, key, vector in collect_grid(HELDOUT_GRID):
        classification = model.classify(vector)
        confusion[variant][classification.label] += 1
        vectors[variant][key] = {
            "features": vector.as_dict(),
            "identified": classification.label,
            "margin": classification.margin,
        }
    return {
        "_comment": "Held-out behavior-class vectors and confusion matrix "
        "(repro.ident). Regenerate ONLY after intentional behavior "
        "changes: PYTHONPATH=src python scripts/update_ident.py",
        "format": 1,
        "model_digest": model.digest(),
        "min_margin": MIN_MARGIN,
        "confusion": confusion,
        "vectors": vectors,
    }


def main() -> int:
    model = fit_reference_classifier()
    model_target = reference_model_path()
    model_target.write_text(model.to_json(), encoding="utf-8")
    print(f"wrote {model_target}  (digest {model.digest()[:16]}…)")

    payload = build_behavior_classes(model)
    golden_target = REPO / "tests" / "golden" / "behavior_classes.json"
    golden_target.parent.mkdir(parents=True, exist_ok=True)
    golden_target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {golden_target}")

    misses = [
        (variant, identified, count)
        for variant, row in payload["confusion"].items()
        for identified, count in row.items()
        if identified != variant and count
    ]
    for variant, row in payload["confusion"].items():
        cells = " ".join(f"{row[w]:2d}" for w in IDENT_VARIANTS)
        print(f"  {variant:<8} [{cells}]")
    if misses:
        print(f"WARNING: held-out misidentifications: {misses}")
        return 1
    print("held-out identification: perfect")
    return 0


if __name__ == "__main__":
    sys.exit(main())
