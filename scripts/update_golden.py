#!/usr/bin/env python
"""Regenerate tests/golden/state_digests.json.

Run this ONLY after an intentional behavior change to a TCP variant,
the engine, or the digest encoding — the whole point of the golden
layer is that the file does not change by accident.  Review the diff:
a change to one variant's digests should touch only that variant's
block; a change to every block means the engine or the digest framing
moved.

Usage: PYTHONPATH=src python scripts/update_golden.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.snapshot import DIGEST_VERSION, all_golden_digests  # noqa: E402
from repro.snapshot.golden import CHECKPOINT_TIMES  # noqa: E402


def main() -> int:
    target = REPO / "tests" / "golden" / "state_digests.json"
    payload = {
        "_comment": "Canonical state digests of the golden scenarios "
        "(repro.snapshot.golden). Regenerate ONLY after intentional "
        "behavior changes: PYTHONPATH=src python scripts/update_golden.py",
        "digest_version": DIGEST_VERSION,
        "checkpoint_times": list(CHECKPOINT_TIMES),
        "digests": all_golden_digests(),
    }
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target}")
    for variant, digests in payload["digests"].items():
        for checkpoint, digest in digests.items():
            print(f"  {variant:<8} {checkpoint:<8} {digest[:16]}…")
    return 0


if __name__ == "__main__":
    sys.exit(main())
