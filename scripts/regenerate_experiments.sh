#!/usr/bin/env bash
# Regenerate every paper table/figure at full scale and leave all
# artifacts (text reports + CSV + JSON) under results/.
#
# Usage: scripts/regenerate_experiments.sh [output-dir]
set -euo pipefail
out="${1:-results}"
mkdir -p "$out"
python -m repro.experiments all --out "$out"
echo
echo "reports + machine-readable exports written to $out/"
ls -1 "$out"
