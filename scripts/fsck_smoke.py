#!/usr/bin/env python3
"""CI smoke for storage self-healing: corrupt a real store, fsck it.

Builds a small genuine store (two cached cells + one prefix snapshot),
then vandalizes it — truncates a cache entry, bit-flips the snapshot —
and checks the full contract end to end:

* ``fsck --dry-run`` sees every problem, exits 1, touches nothing;
* ``fsck`` quarantines the corruption (with ``QuarantineRecord``
  sidecars), removes the dangling prefix-index entry, exits 0;
* a second pass over the repaired store is clean;
* the quarantined evidence is still on disk, not deleted.

Usage::

    python scripts/fsck_smoke.py [workdir]

With a ``workdir`` the corrupted store and its quarantine are built
under it (CI uploads this on failure); default is a temp directory.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))  # tests.* helper cells

from repro.experiments.cli import fsck_cli  # noqa: E402
from repro.runner import (  # noqa: E402
    PrefixSpec,
    ResultCache,
    SnapshotStore,
    SweepRunner,
    TaskSpec,
    read_quarantine,
)
from repro.runner.warmstart import SNAPSHOT_SUBDIR  # noqa: E402

FAILURES: list[str] = []


def check(ok: bool, what: str) -> None:
    print(("ok   " if ok else "FAIL ") + what)
    if not ok:
        FAILURES.append(what)


def main() -> int:
    if len(sys.argv) > 1:
        root = Path(sys.argv[1]).resolve() / "fsck-smoke"
        root.mkdir(parents=True, exist_ok=True)
    else:
        root = Path(tempfile.mkdtemp(prefix="fsck-smoke-"))
    cache_root = root / "cache"
    print(f"building store under {cache_root}")

    cache = ResultCache(root=cache_root)
    SweepRunner(cache=cache).map(
        [
            TaskSpec(
                fn="tests.resilience.helpers:run_metrics_cell",
                args=(variant, 2.0),
                label=f"smoke {variant}",
            )
            for variant in ("reno", "rr")
        ]
    )
    store = SnapshotStore(cache_root / SNAPSHOT_SUBDIR)
    digest = store.ensure_prefix(
        PrefixSpec(
            fn="tests.resilience.helpers:build_stalled_world",
            args=("rr", 400, 0.5),
            label="smoke prefix",
        )
    )

    # Vandalize: truncate one cache entry, bit-flip the snapshot.
    entry = next((cache_root / cache.fingerprint[:16]).glob("*.pkl"))
    entry.write_bytes(entry.read_bytes()[:40])
    snap = store.path_for(digest)
    data = bytearray(snap.read_bytes())
    data[len(data) // 2] ^= 0xFF
    snap.write_bytes(bytes(data))

    argv = ["--cache-root", str(cache_root)]
    check(fsck_cli(argv + ["--dry-run"]) == 1, "dry run reports problems, exit 1")
    check(entry.exists() and snap.exists(), "dry run touched nothing")
    check(fsck_cli(argv) == 0, "repair pass exits 0")
    check(not entry.exists() and not snap.exists(), "corruption moved aside")
    cache_records = read_quarantine(cache.quarantine_dir)
    store_records = read_quarantine(store.quarantine_dir)
    check(
        any(r.kind == "cache-entry" for r in cache_records),
        "cache quarantine record written",
    )
    check(
        any(r.kind == "snapshot" for r in store_records),
        "snapshot quarantine record written",
    )
    check(
        (store.quarantine_dir / snap.name).exists(),
        "quarantined evidence kept, not deleted",
    )
    check(fsck_cli(argv) == 0, "second pass over repaired store is clean")

    if FAILURES:
        print(f"{len(FAILURES)} check(s) failed")
        return 1
    print("fsck smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
