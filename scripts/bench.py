#!/usr/bin/env python3
"""Record the repo's performance trajectory.

Runs the engine micro-benchmarks (the same workloads as
``benchmarks/test_bench_engine.py``) plus one macro experiment campaign
through :mod:`repro.runner`, and writes two JSON baselines:

* ``BENCH_engine.json``      — events/sec per engine workload;
* ``BENCH_experiments.json`` — campaign wall-clock per cell, parallel
  speedup and cache-replay hit rate.

Committed baselines live at the repo root; ``--check`` compares a fresh
run against them and exits non-zero on a >30% events/sec regression
(tunable via ``--max-regression``).  ``--quick`` trims repeats and the
macro campaign for CI smoke runs — the micro workloads themselves are
unchanged, so events/sec stays comparable to a full run.

Usage::

    python scripts/bench.py                 # refresh baselines in-place
    python scripts/bench.py --quick --check --out bench-out   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from workloads import MICRO_WORKLOADS  # noqa: E402

from repro.experiments.figure5 import Figure5Config, run_figure5  # noqa: E402
from repro.runner import (  # noqa: E402
    ResultCache,
    SnapshotStore,
    SweepRunner,
    default_jobs,
)

ENGINE_BASELINE = "BENCH_engine.json"
EXPERIMENTS_BASELINE = "BENCH_experiments.json"


def time_workload(fn, kwargs, repeats: int) -> dict:
    """Best-of-``repeats`` timing (one untimed warmup)."""
    events = fn(**kwargs)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(**kwargs)
        best = min(best, time.perf_counter() - start)
    return {
        "seconds": round(best, 6),
        "events": events,
        "events_per_sec": round(events / best, 1),
    }


def bench_engine(repeats: int) -> dict:
    benches = {}
    for name, (fn, kwargs) in MICRO_WORKLOADS.items():
        benches[name] = time_workload(fn, kwargs, repeats)
        print(
            f"  {name:<24} {benches[name]['seconds'] * 1000:8.2f} ms"
            f"  {benches[name]['events_per_sec']:>12,.0f} ev/s"
        )
    return benches


def bench_experiments(quick: bool, jobs: int) -> dict:
    """The macro campaign: figure5's grid, cold then cache-replayed."""
    config = Figure5Config()
    if quick:
        config.transfer_packets = 300
        config.sim_duration = 30.0
    cells = len(config.drop_counts) * len(config.variants)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        runner = SweepRunner(jobs=jobs, cache=ResultCache(root=tmp))
        start = time.perf_counter()
        run_figure5(config, runner=runner)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        run_figure5(config, runner=runner)
        warm = time.perf_counter() - start
        hit_rate = runner.stats.cache_hit_rate
    serial_runner = SweepRunner(jobs=1)
    start = time.perf_counter()
    run_figure5(config, runner=serial_runner)
    serial = time.perf_counter() - start
    report = {
        "campaign": "figure5" + ("-quick" if quick else ""),
        "cells": cells,
        "jobs": jobs,
        "serial_seconds": round(serial, 3),
        "cold_seconds": round(cold, 3),
        "warm_seconds": round(warm, 4),
        "seconds_per_cell": round(cold / cells, 4),
        "parallel_speedup": round(serial / cold, 2) if cold else None,
        "cache_hit_rate": hit_rate,
        "warm_over_cold": round(warm / cold, 4) if cold else None,
    }
    for key, value in report.items():
        print(f"  {key:<18} {value}")
    return report


def bench_warmstart(quick: bool) -> dict:
    """Warm-start speedup: fork one captured pre-loss prefix per variant
    instead of re-running slow start from t=0 in every cell.

    Uses a late-loss grid (the first engineered drop at packet 400 of a
    600-packet transfer, six drop counts per variant) so the shared
    warm-up prefix dominates each cell and each captured prefix is
    forked many times — the regime warm starting exists for.  Cold and
    warm rows are bit-identical (asserted), so the speedup is free of
    accuracy cost.
    """
    config = Figure5Config(
        drop_counts=(1, 2, 3, 4, 5, 6),
        first_drop_seq=400,
        transfer_packets=600,
        sim_duration=60.0,
    )
    if quick:
        config.variants = ("newreno", "rr")
    with tempfile.TemporaryDirectory(prefix="repro-bench-snap-") as tmp:
        store = SnapshotStore(tmp)
        start = time.perf_counter()
        cold = run_figure5(config, runner=SweepRunner())
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_figure5(
            config, runner=SweepRunner(), warm_start=True, store=store
        )
        first_warm_seconds = time.perf_counter() - start
        # Second warm sweep replays the already-captured snapshots —
        # the steady state of iterating on a sweep's post-loss cells.
        start = time.perf_counter()
        run_figure5(config, runner=SweepRunner(), warm_start=True, store=store)
        replay_warm_seconds = time.perf_counter() - start
    if warm.rows != cold.rows:
        raise AssertionError("warm-start rows diverged from cold rows")
    cells = len(config.drop_counts) * len(config.variants)
    report = {
        "campaign": "figure5-late-loss" + ("-quick" if quick else ""),
        "cells": cells,
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(first_warm_seconds, 3),
        "warm_replay_seconds": round(replay_warm_seconds, 3),
        "warm_speedup": (
            round(cold_seconds / first_warm_seconds, 2) if first_warm_seconds else None
        ),
        "warm_replay_speedup": (
            round(cold_seconds / replay_warm_seconds, 2) if replay_warm_seconds else None
        ),
        "bit_identical": True,
    }
    for key, value in report.items():
        print(f"  {key:<22} {value}")
    return report


def check_regression(fresh: dict, baseline_path: Path, max_regression: float) -> int:
    """Compare fresh events/sec against the committed baseline."""
    if not baseline_path.exists():
        print(f"no committed baseline at {baseline_path}; skipping check")
        return 0
    baseline = json.loads(baseline_path.read_text())
    failures = 0
    for name, fresh_bench in fresh.items():
        base_bench = baseline.get("benches", {}).get(name)
        if base_bench is None:
            continue
        base_rate = base_bench["events_per_sec"]
        fresh_rate = fresh_bench["events_per_sec"]
        if not base_rate:
            continue
        delta = fresh_rate / base_rate - 1.0
        verdict = "ok"
        if delta < -max_regression:
            verdict = "REGRESSION"
            failures += 1
        print(
            f"  {name:<24} baseline {base_rate:>12,.0f}  fresh {fresh_rate:>12,.0f}"
            f"  ({delta:+.1%})  {verdict}"
        )
    if failures:
        print(f"{failures} workload(s) regressed more than {max_regression:.0%}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizing")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on events/sec regression vs the committed BENCH_engine.json",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="tolerated fractional events/sec drop for --check (default 0.30)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="workers for the macro campaign (default: up to 4)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write BENCH_*.json to DIR instead of the repo root",
    )
    args = parser.parse_args(argv)
    repeats = 3 if args.quick else 7
    jobs = args.jobs or min(4, default_jobs())
    out_dir = Path(args.out) if args.out else REPO_ROOT
    out_dir.mkdir(parents=True, exist_ok=True)

    meta = {
        "schema": 1,
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }

    print("engine micro-benchmarks:")
    benches = bench_engine(repeats)
    (out_dir / ENGINE_BASELINE).write_text(
        json.dumps({**meta, "benches": benches}, indent=2) + "\n"
    )

    print("experiment macro campaign:")
    campaign = bench_experiments(args.quick, jobs)
    print("warm-start (snapshot fork) campaign:")
    warmstart = bench_warmstart(args.quick)
    (out_dir / EXPERIMENTS_BASELINE).write_text(
        json.dumps({**meta, "campaign": campaign, "warmstart": warmstart}, indent=2)
        + "\n"
    )
    print(f"wrote {out_dir / ENGINE_BASELINE} and {out_dir / EXPERIMENTS_BASELINE}")

    if args.check:
        print("regression check:")
        return check_regression(
            benches, REPO_ROOT / ENGINE_BASELINE, args.max_regression
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
