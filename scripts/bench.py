#!/usr/bin/env python3
"""Record the repo's performance trajectory.

Runs the engine micro-benchmarks (the same workloads as
``benchmarks/test_bench_engine.py``) plus one macro experiment campaign
through :mod:`repro.runner`, and writes two JSON baselines:

* ``BENCH_engine.json``      — events/sec per engine workload;
* ``BENCH_experiments.json`` — campaign wall-clock per cell, parallel
  speedup, cache-replay hit rate, per-grid warm-start speedups for the
  five warm-startable sweeps, and delta-vs-full snapshot sizes.

Committed baselines live at the repo root; ``--check`` compares a fresh
run against them per workload, with per-bench regression thresholds
(:data:`CHECK_THRESHOLDS`, fallback ``--max-regression``) and
best-of-N timing so the gate rides real slowdowns, not CI noise.  The
gate only fires when the fresh run and the committed baseline used the
same engine backend (``core_backend`` in the JSON): comparing a
pure-python run against a compiled-core baseline measures the build
matrix, not a regression.  ``--quick`` trims repeats and the macro
campaign for CI smoke runs — the micro workloads themselves are
unchanged, so events/sec stays comparable to a full run.

Usage::

    python scripts/bench.py                 # refresh baselines in-place
    python scripts/bench.py --quick --check --out bench-out   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from workloads import MICRO_WORKLOADS  # noqa: E402

from repro.experiments.ackloss import AckLossConfig, run_ackloss  # noqa: E402
from repro.experiments.figure5 import (  # noqa: E402
    Figure5Config,
    capture_warm_snapshot,
    run_figure5,
)
from repro.experiments.figure6 import Figure6Config, run_figure6  # noqa: E402
from repro.experiments.figure7 import Figure7Config, run_figure7  # noqa: E402
from repro.experiments.table5 import Table5Config, run_table5  # noqa: E402
from repro.obs import RunTelemetry  # noqa: E402
from repro.runner import (  # noqa: E402
    ResultCache,
    SnapshotStore,
    SweepRunner,
    default_jobs,
)
from repro.sim.engine import CORE_BACKEND  # noqa: E402
from repro.snapshot import Snapshot  # noqa: E402
from repro.snapshot.delta import DeltaSnapshot, should_fall_back  # noqa: E402

ENGINE_BASELINE = "BENCH_engine.json"
EXPERIMENTS_BASELINE = "BENCH_experiments.json"

#: Per-workload tolerated fractional events/sec drop for ``--check``.
#: The micro workloads are near-pure engine and time stably, so they
#: get a tight gate; ten_flow_red_second runs mostly Python callback
#: code (RED, TCP, per-drop observers) and needs headroom for CI-runner
#: variance.  Workloads not listed fall back to ``--max-regression``.
CHECK_THRESHOLDS = {
    "event_scheduling": 0.25,
    "timer_churn": 0.25,
    "end_to_end_transfer": 0.30,
    "ten_flow_red_second": 0.35,
}

#: Minimum timing repeats whenever ``--check`` gates the run: best-of-1
#: is a coin flip on a noisy runner, best-of-3 tracks the machine's
#: true ceiling.
CHECK_MIN_REPEATS = 3

#: Tolerated fractional events/sec drop for the manyflow WAN scene,
#: per engine backend (the existing macro-gate threshold).
MANYFLOW_THRESHOLD = 0.30

#: The manyflow smoke scene: deliberately identical for ``--quick`` and
#: full runs so CI smoke numbers gate against the committed baseline.
MANYFLOW_SCENE = {"family": "wan", "n_routers": 40, "flows": 60, "duration": 2.0}

#: Tolerated fractional events/sec drop for the rivals mobile cell,
#: same macro-gate threshold as manyflow.
RIVALS_THRESHOLD = 0.30

#: The rivals smoke cell: a CUBIC-vs-RR match on the time-varying
#: mobile bottleneck — exercises the modern-rival senders plus the
#: RateSchedule machinery.  Identical for ``--quick`` and full runs.
#: Sized long enough (~50k events) that the probe isn't all startup
#: noise on a busy runner.
RIVALS_CELL = {"variant": "cubic", "regime": "mobile", "duration": 20.0}


def time_workload(fn, kwargs, repeats: int) -> dict:
    """Best-of-``repeats`` timing (one untimed warmup)."""
    events = fn(**kwargs)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(**kwargs)
        best = min(best, time.perf_counter() - start)
    return {
        "seconds": round(best, 6),
        "events": events,
        "events_per_sec": round(events / best, 1),
    }


def bench_engine(repeats: int) -> dict:
    benches = {}
    for name, (fn, kwargs) in MICRO_WORKLOADS.items():
        benches[name] = time_workload(fn, kwargs, repeats)
        print(
            f"  {name:<24} {benches[name]['seconds'] * 1000:8.2f} ms"
            f"  {benches[name]['events_per_sec']:>12,.0f} ev/s"
        )
    return benches


def bench_experiments(quick: bool, jobs: int) -> dict:
    """The macro campaign: figure5's grid, cold then cache-replayed.

    The whole campaign runs under one :class:`RunTelemetry`, so the
    committed baseline names the run manifest (spec digests, per-task
    wall times, code fingerprint) that produced its numbers.
    """
    config = Figure5Config()
    if quick:
        config.transfer_packets = 300
        config.sim_duration = 30.0
    cells = len(config.drop_counts) * len(config.variants)
    telemetry = RunTelemetry(
        "bench-fig5", args={"quick": quick, "jobs": jobs}, progress=False
    )
    try:
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
            runner = SweepRunner(jobs=jobs, cache=ResultCache(root=tmp))
            telemetry.attach(runner)
            start = time.perf_counter()
            run_figure5(config, runner=runner, manifest=telemetry.manifest)
            cold = time.perf_counter() - start
            start = time.perf_counter()
            run_figure5(config, runner=runner)
            warm = time.perf_counter() - start
            hit_rate = runner.stats.cache_hit_rate
            telemetry.detach(runner)
        serial_runner = SweepRunner(jobs=1)
        telemetry.attach(serial_runner)
        start = time.perf_counter()
        run_figure5(config, runner=serial_runner)
        serial = time.perf_counter() - start
        telemetry.detach(serial_runner)
    except BaseException as error:
        telemetry.abort(error)
        raise
    manifest_path = telemetry.finish()
    report = {
        "campaign": "figure5" + ("-quick" if quick else ""),
        "cells": cells,
        "jobs": jobs,
        "serial_seconds": round(serial, 3),
        "cold_seconds": round(cold, 3),
        "warm_seconds": round(warm, 4),
        "seconds_per_cell": round(cold / cells, 4),
        "parallel_speedup": round(serial / cold, 2) if cold else None,
        "cache_hit_rate": hit_rate,
        "warm_over_cold": round(warm / cold, 4) if cold else None,
        "run_id": telemetry.manifest.run_id,
        "manifest": str(manifest_path),
    }
    for key, value in report.items():
        print(f"  {key:<18} {value}")
    return report


def _warmstart_grids(quick: bool) -> list:
    """(name, run_fn, config, cells, result-extractor) per warm-startable
    sweep.

    Bench sizings trim the slowest paper grids (figure7's 100 s runs,
    table5's 180 s replicas) so a full baseline refresh stays in
    minutes — the warm/cold ratio is the tracked quantity, not paper
    numbers.  figure5 uses a late-loss grid (first engineered drop at
    packet 400 of a 600-packet transfer) so the shared prefix dominates
    each cell — the regime warm starting exists for.
    """
    fig5 = Figure5Config(
        drop_counts=(1, 2, 3, 4, 5, 6),
        first_drop_seq=400,
        transfer_packets=600,
        sim_duration=60.0,
    )
    fig6 = Figure6Config()
    fig7 = Figure7Config(loss_rates=(0.01, 0.03, 0.05), duration=40.0, runs_per_point=2)
    tab5 = Table5Config(runs_per_case=2, sim_duration=60.0)
    ack = AckLossConfig()
    if quick:
        fig5.variants = ("newreno", "rr")
        fig6.duration = 4.0
        fig7 = Figure7Config(loss_rates=(0.01, 0.05), duration=20.0, runs_per_point=1)
        tab5 = Table5Config(
            cases=(("reno", "rr"), ("rr", "rr")), runs_per_case=2, sim_duration=30.0
        )
        ack = AckLossConfig(
            variants=("newreno", "rr"),
            ack_loss_rates=(0.0, 0.1),
            runs_per_point=2,
            sim_duration=30.0,
        )
    return [
        ("figure5-late-loss", run_figure5, fig5,
         len(fig5.drop_counts) * len(fig5.variants), lambda r: r.rows),
        ("figure6", run_figure6, fig6, len(fig6.variants), lambda r: r.flows),
        ("figure7", run_figure7, fig7,
         len(fig7.variants) * len(fig7.loss_rates), lambda r: r.points),
        ("table5", run_table5, tab5,
         len(tab5.cases) * tab5.runs_per_case, lambda r: r.rows),
        ("ackloss", run_ackloss, ack,
         len(ack.variants) * len(ack.ack_loss_rates), lambda r: r.rows),
    ]


def bench_warmstart(quick: bool) -> dict:
    """Per-grid warm-start speedup: fork one captured prefix snapshot
    per variant (per background mix for table5) instead of replaying
    the shared warm-up from t=0 in every cell.

    Cold and warm results are asserted equal, so the speedups are free
    of accuracy cost.  The second warm sweep replays already-captured
    prefixes via the prefix index — the steady state of iterating on a
    sweep's post-prefix cells.
    """
    suffix = "-quick" if quick else ""
    grids = {}
    telemetry = RunTelemetry("bench-warmstart", args={"quick": quick}, progress=False)

    def _timed(run_fn, config, store=None, warm_start=False):
        runner = SweepRunner()
        telemetry.attach(runner)
        try:
            start = time.perf_counter()
            result = run_fn(config, runner=runner, warm_start=warm_start, store=store)
            return result, time.perf_counter() - start
        finally:
            telemetry.detach(runner)

    try:
        for name, run_fn, config, cells, rows_of in _warmstart_grids(quick):
            with tempfile.TemporaryDirectory(prefix="repro-bench-snap-") as tmp:
                store = SnapshotStore(tmp)
                cold, cold_seconds = _timed(run_fn, config)
                # "force" bypasses the warm-start cost model: this bench
                # *measures* the warm machinery — including on grids the
                # model would (correctly) refuse — and its numbers are
                # what the model's constants are calibrated against.
                warm, warm_seconds = _timed(run_fn, config, store, warm_start="force")
                replay, replay_seconds = _timed(
                    run_fn, config, store, warm_start="force"
                )
            if rows_of(warm) != rows_of(cold) or rows_of(replay) != rows_of(cold):
                raise AssertionError(f"{name}: warm-start results diverged from cold")
            grids[name] = _warmstart_report(
                name + suffix, cells, cold_seconds, warm_seconds, replay_seconds
            )
    except BaseException as error:
        telemetry.abort(error)
        raise
    telemetry.finish()
    grids["run_id"] = telemetry.manifest.run_id
    return grids


def _warmstart_report(
    campaign: str, cells: int, cold_seconds: float, warm_seconds: float,
    replay_seconds: float,
) -> dict:
    report = {
        "campaign": campaign,
        "cells": cells,
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "warm_replay_seconds": round(replay_seconds, 3),
        "warm_speedup": (
            round(cold_seconds / warm_seconds, 2) if warm_seconds else None
        ),
        "warm_replay_speedup": (
            round(cold_seconds / replay_seconds, 2) if replay_seconds else None
        ),
        "bit_identical": True,
    }
    print(
        f"  {campaign:<20} cold {report['cold_seconds']:>7.3f}s"
        f"  warm {report['warm_seconds']:>7.3f}s (x{report['warm_speedup']})"
        f"  replay {report['warm_replay_seconds']:>7.3f}s"
        f" (x{report['warm_replay_speedup']})"
    )
    return report


def bench_delta() -> dict:
    """Delta-vs-full snapshot sizes for per-cell forks.

    Captures the figure5 late-loss prefix, forks it (restore, reprogram
    the cell's drops, run a little further — exactly what a warm cell
    or a triage fork does), and records how much smaller each fork is
    when stored as a delta against its base.  The far fork shows the
    delta degrading gracefully as the fork diverges.
    """
    from repro.experiments.figure5 import _cell_drops

    config = Figure5Config(
        drop_counts=(1, 2, 3),
        first_drop_seq=400,
        transfer_packets=600,
        sim_duration=60.0,
    )
    base = capture_warm_snapshot("rr", config)
    forks = {}
    for label, extra_seconds in (("near-fork", 0.25), ("far-fork", 5.0)):
        scenario = base.restore(verify=False)
        scenario.dumbbell.forward_link.loss.reprogram(_cell_drops(3, config))
        scenario.sim.run(until=scenario.sim.now + extra_seconds)
        fork = Snapshot.capture(scenario, label=f"bench {label}")
        delta = DeltaSnapshot.diff(fork, base)
        forks[label] = {
            "sim_seconds_past_base": extra_seconds,
            "full_bytes": fork.nbytes,
            "delta_bytes": delta.nbytes,
            "delta_over_full": round(delta.nbytes / fork.nbytes, 4),
            "fallback_to_full": should_fall_back(delta, fork),
        }
        print(
            f"  {label:<20} full {fork.nbytes:>8,} B"
            f"  delta {delta.nbytes:>8,} B"
            f"  ({forks[label]['delta_over_full']:.0%} of full)"
        )
    return {"base_bytes": base.nbytes, "forks": forks}


# Runs in a fresh interpreter so the engine backend is selected by the
# environment (REPRO_PURE_PYTHON), not by whatever this process loaded.
_MANYFLOW_PROBE = """
import json, sys, time
from repro.net.red import RedParams
from repro.scenes import FlowPopulation, SceneSpec, WaxmanParams, build_scene
from repro.sim.engine import CORE_BACKEND

scene_args = json.loads(sys.argv[1])
spec = SceneSpec(
    family="wan",
    topology=WaxmanParams(n_routers=scene_args["n_routers"], graph_seed=3),
    flows=FlowPopulation(count=scene_args["flows"]),
    red=RedParams(min_th=10.0, max_th=40.0, max_p=0.02, limit=120),
    seed=11,
    duration=scene_args["duration"],
)
scene = build_scene(spec)
start = time.perf_counter()
scene.run()
elapsed = time.perf_counter() - start
print(json.dumps({
    "backend": CORE_BACKEND,
    "events": scene.sim.events_processed,
    "seconds": round(elapsed, 6),
    "events_per_sec": round(scene.sim.events_processed / elapsed, 1),
}))
"""


def bench_manyflow(quick: bool) -> dict:
    """Events/sec on the mid-size WAN scene, one entry per engine backend.

    The generated-scenes smoke cell: a seeded Waxman WAN with RED on
    every core link and 60 long-lived flows (docs/SCENARIOS.md).  Each
    backend runs in a subprocess — ``REPRO_PURE_PYTHON=1`` for the pure
    interpreter, a clean environment for the compiled core — so one
    refresh records both numbers and ``--check`` gates each against its
    own committed figure.  If the compiled core is unavailable both
    probes report ``python`` and the section simply carries one entry.
    """
    repeats = 1 if quick else 2
    backends = {}
    for env_value in (None, "1"):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("REPRO_PURE_PYTHON", None)
        if env_value is not None:
            env["REPRO_PURE_PYTHON"] = env_value
        best = None
        for _ in range(repeats):
            out = subprocess.run(
                [sys.executable, "-c", _MANYFLOW_PROBE, json.dumps(MANYFLOW_SCENE)],
                capture_output=True, text=True, env=env, check=True,
            )
            probe = json.loads(out.stdout)
            if best is None or probe["events_per_sec"] > best["events_per_sec"]:
                best = probe
        backend = best.pop("backend")
        backends[backend] = best
        print(
            f"  wan-scene [{backend:<8}] {best['seconds'] * 1000:8.2f} ms"
            f"  {best['events_per_sec']:>12,.0f} ev/s"
        )
    return {"scene": dict(MANYFLOW_SCENE), "backends": backends}


# Same fresh-interpreter arrangement as the manyflow probe: the engine
# backend must come from the environment, not this process's imports.
_RIVALS_PROBE = """
import json, sys, time
from repro.experiments.rivals import RivalsConfig, build_cell_world
from repro.sim.engine import CORE_BACKEND

cell = json.loads(sys.argv[1])
config = RivalsConfig(
    duration=cell["duration"], warmup=cell["duration"] * 0.25
)
world = build_cell_world("match", cell["variant"], cell["regime"], config)
start = time.perf_counter()
world.sim.run(until=cell["duration"])
elapsed = time.perf_counter() - start
print(json.dumps({
    "backend": CORE_BACKEND,
    "events": world.sim.events_processed,
    "seconds": round(elapsed, 6),
    "events_per_sec": round(world.sim.events_processed / elapsed, 1),
}))
"""


def bench_rivals(quick: bool) -> dict:
    """Events/sec on the rivals mobile match cell, per engine backend.

    A CUBIC-vs-RR match over the time-varying wireless bottleneck
    (docs/SCENARIOS.md §5) — the modern-rival counterpart of the
    manyflow WAN probe, with the same subprocess-per-backend
    arrangement so ``--check`` gates each backend against its own
    committed figure.  The probe is cheap (~100 ms), so even ``--quick``
    takes best-of-2 — a single sample of a short cell is too noisy to
    gate on.
    """
    repeats = 2 if quick else 3
    backends = {}
    for env_value in (None, "1"):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("REPRO_PURE_PYTHON", None)
        if env_value is not None:
            env["REPRO_PURE_PYTHON"] = env_value
        best = None
        for _ in range(repeats):
            out = subprocess.run(
                [sys.executable, "-c", _RIVALS_PROBE, json.dumps(RIVALS_CELL)],
                capture_output=True, text=True, env=env, check=True,
            )
            probe = json.loads(out.stdout)
            if best is None or probe["events_per_sec"] > best["events_per_sec"]:
                best = probe
        backend = best.pop("backend")
        backends[backend] = best
        print(
            f"  rivals-cell [{backend:<8}] {best['seconds'] * 1000:8.2f} ms"
            f"  {best['events_per_sec']:>12,.0f} ev/s"
        )
    return {"cell": dict(RIVALS_CELL), "backends": backends}


def check_rivals_regression(fresh: dict, baseline_path: Path) -> int:
    """Gate the rivals mobile-cell events/sec per backend (>30% drop)."""
    if not baseline_path.exists():
        print(f"no committed baseline at {baseline_path}; skipping rivals check")
        return 0
    baseline = json.loads(baseline_path.read_text()).get("rivals")
    if not baseline:
        print("committed baseline has no rivals section; skipping rivals check")
        return 0
    if baseline.get("cell") != fresh.get("cell"):
        print("rivals cell sizing changed since the baseline; skipping the gate")
        return 0
    failures = 0
    for backend, fresh_bench in fresh["backends"].items():
        base_bench = baseline.get("backends", {}).get(backend)
        if base_bench is None or not base_bench.get("events_per_sec"):
            continue
        delta = fresh_bench["events_per_sec"] / base_bench["events_per_sec"] - 1.0
        verdict = "ok"
        if delta < -RIVALS_THRESHOLD:
            verdict = "REGRESSION"
            failures += 1
        print(
            f"  rivals-cell [{backend:<8}] baseline {base_bench['events_per_sec']:>12,.0f}"
            f"  fresh {fresh_bench['events_per_sec']:>12,.0f}"
            f"  ({delta:+.1%} vs -{RIVALS_THRESHOLD:.0%} allowed)  {verdict}"
        )
    if failures:
        print(f"{failures} rivals backend(s) regressed past the threshold")
    return 1 if failures else 0


def check_manyflow_regression(fresh: dict, baseline_path: Path) -> int:
    """Gate the manyflow WAN-scene events/sec per backend (>30% drop)."""
    if not baseline_path.exists():
        print(f"no committed baseline at {baseline_path}; skipping manyflow check")
        return 0
    baseline = json.loads(baseline_path.read_text()).get("manyflow")
    if not baseline:
        print("committed baseline has no manyflow section; skipping manyflow check")
        return 0
    if baseline.get("scene") != fresh.get("scene"):
        print("manyflow scene sizing changed since the baseline; skipping the gate")
        return 0
    failures = 0
    for backend, fresh_bench in fresh["backends"].items():
        base_bench = baseline.get("backends", {}).get(backend)
        if base_bench is None or not base_bench.get("events_per_sec"):
            continue
        delta = fresh_bench["events_per_sec"] / base_bench["events_per_sec"] - 1.0
        verdict = "ok"
        if delta < -MANYFLOW_THRESHOLD:
            verdict = "REGRESSION"
            failures += 1
        print(
            f"  wan-scene [{backend:<8}] baseline {base_bench['events_per_sec']:>12,.0f}"
            f"  fresh {fresh_bench['events_per_sec']:>12,.0f}"
            f"  ({delta:+.1%} vs -{MANYFLOW_THRESHOLD:.0%} allowed)  {verdict}"
        )
    if failures:
        print(f"{failures} manyflow backend(s) regressed past the threshold")
    return 1 if failures else 0


def check_regression(fresh: dict, baseline_path: Path, max_regression: float) -> int:
    """Compare fresh events/sec against the committed baseline, one
    threshold per workload (:data:`CHECK_THRESHOLDS`)."""
    if not baseline_path.exists():
        print(f"no committed baseline at {baseline_path}; skipping check")
        return 0
    baseline = json.loads(baseline_path.read_text())
    base_backend = baseline.get("core_backend", "python")
    if base_backend != CORE_BACKEND:
        print(
            f"baseline was recorded under the {base_backend!r} engine backend "
            f"but this run used {CORE_BACKEND!r}; skipping the gate (informational "
            "numbers above still stand)"
        )
        return 0
    failures = 0
    for name, fresh_bench in fresh.items():
        base_bench = baseline.get("benches", {}).get(name)
        if base_bench is None:
            continue
        base_rate = base_bench["events_per_sec"]
        fresh_rate = fresh_bench["events_per_sec"]
        if not base_rate:
            continue
        threshold = CHECK_THRESHOLDS.get(name, max_regression)
        delta = fresh_rate / base_rate - 1.0
        verdict = "ok"
        if delta < -threshold:
            verdict = "REGRESSION"
            failures += 1
        print(
            f"  {name:<24} baseline {base_rate:>12,.0f}  fresh {fresh_rate:>12,.0f}"
            f"  ({delta:+.1%} vs -{threshold:.0%} allowed)  {verdict}"
        )
    if failures:
        print(f"{failures} workload(s) regressed past their threshold")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizing")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on events/sec regression vs the committed BENCH_engine.json",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="tolerated fractional events/sec drop for --check (default 0.30)",
    )
    parser.add_argument(
        "--micro-only",
        action="store_true",
        help="run only the engine micro-benchmarks (skip macro/warm-start/delta)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="workers for the macro campaign (default: up to 4)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write BENCH_*.json to DIR instead of the repo root",
    )
    args = parser.parse_args(argv)
    repeats = 3 if args.quick else 7
    if args.check:
        repeats = max(repeats, CHECK_MIN_REPEATS)
    jobs = args.jobs or min(4, default_jobs())
    out_dir = Path(args.out) if args.out else REPO_ROOT
    out_dir.mkdir(parents=True, exist_ok=True)

    meta = {
        "schema": 3,
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "core_backend": CORE_BACKEND,
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }

    print("engine micro-benchmarks:")
    benches = bench_engine(repeats)
    (out_dir / ENGINE_BASELINE).write_text(
        json.dumps({**meta, "benches": benches}, indent=2) + "\n"
    )

    if args.micro_only:
        print(f"wrote {out_dir / ENGINE_BASELINE} (micro-only run)")
    else:
        print("experiment macro campaign:")
        campaign = bench_experiments(args.quick, jobs)
        print("warm-start (snapshot fork) campaigns:")
        warmstart = bench_warmstart(args.quick)
        print("delta snapshot sizes:")
        delta = bench_delta()
        print("manyflow WAN scene (both engine backends):")
        manyflow = bench_manyflow(args.quick)
        print("rivals mobile cell (both engine backends):")
        rivals = bench_rivals(args.quick)
        (out_dir / EXPERIMENTS_BASELINE).write_text(
            json.dumps(
                {
                    **meta,
                    "campaign": campaign,
                    "warmstart": warmstart,
                    "delta": delta,
                    "manyflow": manyflow,
                    "rivals": rivals,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"wrote {out_dir / ENGINE_BASELINE} and {out_dir / EXPERIMENTS_BASELINE}")

    if args.check:
        print("regression check:")
        failed = check_regression(
            benches, REPO_ROOT / ENGINE_BASELINE, args.max_regression
        )
        if not args.micro_only:
            failed |= check_manyflow_regression(
                manyflow, REPO_ROOT / EXPERIMENTS_BASELINE
            )
            failed |= check_rivals_regression(
                rivals, REPO_ROOT / EXPERIMENTS_BASELINE
            )
        return failed
    return 0


if __name__ == "__main__":
    sys.exit(main())
