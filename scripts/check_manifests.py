#!/usr/bin/env python3
"""CI gate: every run manifest under an artifact root must be healthy.

``python scripts/check_manifests.py ARTIFACT_DIR [--expect N]`` scans
``ARTIFACT_DIR/runs/*/manifest.json`` and fails (exit 1) when

* there are no manifests at all (the telemetry layer silently broke),
* fewer than ``--expect N`` manifests are present,
* any manifest has an outcome other than ``ok``, records a failed
  task, or never finished (outcome still ``running``).

The benchmark-smoke CI job runs it against ``bench-out`` so a bench
campaign that lost a task — or stopped writing provenance — turns the
build red even if the timing numbers look plausible.  Schema details
are in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import MANIFEST_FILENAME, RUNS_SUBDIR, RunManifest  # noqa: E402


def check_manifests(root: Path, expect: int = 1) -> int:
    runs_dir = root / RUNS_SUBDIR
    paths = sorted(runs_dir.glob(f"*/{MANIFEST_FILENAME}"))
    if len(paths) < expect:
        print(
            f"FAIL: found {len(paths)} manifest(s) under {runs_dir},"
            f" expected at least {expect}"
        )
        return 1
    failures = 0
    for path in paths:
        try:
            manifest = RunManifest.load(path)
        except Exception as error:  # unreadable/foreign manifests are failures
            print(f"FAIL  {path}: unreadable ({error})")
            failures += 1
            continue
        problems = []
        if manifest.outcome != "ok":
            problems.append(f"outcome {manifest.outcome!r}")
        if manifest.failed:
            problems.append(f"{manifest.failed} failed task(s)")
        if problems:
            print(f"FAIL  {manifest.run_id}: {', '.join(problems)}")
            failures += 1
        else:
            print(
                f"ok    {manifest.run_id}: {manifest.total} task(s),"
                f" {manifest.cached} cached, {manifest.wall_seconds:.2f}s"
            )
    if failures:
        print(f"{failures} unhealthy manifest(s)")
        return 1
    print(f"{len(paths)} manifest(s) healthy")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", metavar="ARTIFACT_DIR", type=Path)
    parser.add_argument(
        "--expect",
        type=int,
        default=1,
        metavar="N",
        help="minimum number of manifests required (default 1)",
    )
    args = parser.parse_args(argv)
    return check_manifests(args.root, expect=args.expect)


if __name__ == "__main__":
    sys.exit(main())
