#!/usr/bin/env python
"""Build the cold/warm/compiled benchmark comparison table.

Reads two ``scripts/bench.py`` output directories — one produced under
the pure-python engine (``REPRO_PURE_PYTHON=1``) and one under the
compiled core — and writes a single markdown table that answers the
two questions the CI artifact exists for:

* how much faster is the compiled core, per micro-benchmark;
* what the snapshot warm-start machinery buys on real campaigns
  (cold vs first warm pass vs warm replay), from whichever run has
  a ``BENCH_experiments.json``.

Usage:
    python scripts/bench_compare.py --pure DIR --compiled DIR --out FILE
"""

import argparse
import json
import sys
from pathlib import Path


def load(path: Path) -> dict:
    if not path.exists():
        return {}
    return json.loads(path.read_text())


def micro_table(pure: dict, compiled: dict) -> list:
    lines = [
        "| micro-benchmark | pure-python ev/s | compiled ev/s | speedup |",
        "|---|---:|---:|---:|",
    ]
    names = list((compiled.get("benches") or pure.get("benches") or {}))
    for name in names:
        p = (pure.get("benches") or {}).get(name, {}).get("events_per_sec")
        c = (compiled.get("benches") or {}).get(name, {}).get("events_per_sec")
        ratio = f"{c / p:.2f}x" if p and c else "n/a"
        fmt = lambda v: f"{v:,.0f}" if v else "n/a"
        lines.append(f"| {name} | {fmt(p)} | {fmt(c)} | {ratio} |")
    return lines


def warmstart_table(experiments: dict) -> list:
    warm = experiments.get("warmstart")
    if not warm:
        return ["_no BENCH_experiments.json in either run — warm-start table skipped_"]
    lines = [
        "| campaign | cold (s) | warm (s) | warm speedup | replay (s) | replay speedup |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for campaign, row in warm.items():
        if not isinstance(row, dict):  # provenance entries (run_id) ride along
            continue
        lines.append(
            f"| {campaign} | {row['cold_seconds']} | {row['warm_seconds']}"
            f" | {row['warm_speedup']}x | {row['warm_replay_seconds']}"
            f" | {row['warm_replay_speedup']}x |"
        )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pure", required=True, metavar="DIR")
    parser.add_argument("--compiled", required=True, metavar="DIR")
    parser.add_argument("--out", required=True, metavar="FILE")
    args = parser.parse_args(argv)

    pure_dir, compiled_dir = Path(args.pure), Path(args.compiled)
    pure = load(pure_dir / "BENCH_engine.json")
    compiled = load(compiled_dir / "BENCH_engine.json")
    if not pure and not compiled:
        print("neither directory holds a BENCH_engine.json", file=sys.stderr)
        return 1
    for label, blob, want in (("pure", pure, "python"), ("compiled", compiled, "compiled")):
        got = blob.get("core_backend")
        if blob and got != want:
            print(
                f"warning: --{label} run was recorded under backend {got!r},"
                f" expected {want!r}",
                file=sys.stderr,
            )
    experiments = load(compiled_dir / "BENCH_experiments.json") or load(
        pure_dir / "BENCH_experiments.json"
    )

    lines = ["# Engine benchmark comparison", ""]
    lines += ["## Pure-python vs compiled core", ""]
    lines += micro_table(pure, compiled)
    lines += ["", "## Cold vs warm-started campaigns", ""]
    lines += warmstart_table(experiments)
    lines.append("")
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text("\n".join(lines))
    print("\n".join(lines))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
