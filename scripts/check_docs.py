#!/usr/bin/env python3
"""Keep the docs' code examples honest.

Extracts fenced code blocks from ``docs/*.md`` and ``README.md`` and
verifies, without executing any example:

* every ``python`` block parses, and every ``import x`` /
  ``from x import y`` of a ``repro`` module resolves against the
  installed package — including each imported name existing on the
  module;
* every ``python -m repro.experiments <cmd>`` invocation (in any
  fenced block) names a real subcommand, verified by running
  ``python -m repro.experiments <cmd> --help``;
* every relative markdown link (``[text](OTHER.md)``,
  ``[text](../FILE.md#anchor)``) resolves to an existing file;
* every ``docs/*.md`` page is reachable from the ``docs/README.md``
  index by following relative links — an orphaned page is a page
  nobody will find.

CI runs this (see .github/workflows/ci.yml), so renaming a public API
or a CLI verb without updating the docs fails the build.

Usage::

    python scripts/check_docs.py            # check docs/*.md + README.md
    python scripts/check_docs.py FILE...    # check specific files
"""

from __future__ import annotations

import ast
import importlib
import os
import re
import subprocess
import sys
import textwrap
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

FENCE_RE = re.compile(r"^```(\w*)\s*$")
CLI_RE = re.compile(r"python -m repro\.experiments\s+([a-z0-9_.-]+)")
# Inline markdown links; external schemes and pure #anchors are
# filtered by link_targets, not the regex.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def fenced_blocks(text: str) -> Iterator[Tuple[str, str, int]]:
    """Yield (language, content, first line number) per fenced block."""
    lang = None
    content: List[str] = []
    start = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = FENCE_RE.match(line.strip())
        if match and lang is None:
            lang = match.group(1).lower()
            content = []
            start = lineno + 1
        elif line.strip() == "```" and lang is not None:
            # Dedent so blocks nested inside list items still parse.
            yield lang, textwrap.dedent("\n".join(content)), start
            lang = None
        elif lang is not None:
            content.append(line)


def check_python_block(block: str, where: str) -> List[str]:
    """Parse the block and resolve its ``repro`` imports."""
    try:
        tree = ast.parse(block)
    except SyntaxError as exc:
        return [f"{where}: python block does not parse: {exc.msg} (line {exc.lineno})"]
    problems = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            targets = [(alias.name, None) for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            targets = [(node.module, alias.name) for alias in node.names]
        else:
            continue
        for module_name, attr in targets:
            if module_name.split(".")[0] != "repro":
                continue
            try:
                module = importlib.import_module(module_name)
            except ImportError as exc:
                problems.append(f"{where}: cannot import {module_name}: {exc}")
                continue
            if attr is not None and attr != "*" and not hasattr(module, attr):
                problems.append(
                    f"{where}: {module_name} has no attribute {attr!r}"
                )
    return problems


def check_cli_commands(commands: List[Tuple[str, str]]) -> List[str]:
    """``python -m repro.experiments <cmd> --help`` must succeed."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    problems = []
    for command in sorted({cmd for cmd, _ in commands}):
        wheres = [where for cmd, where in commands if cmd == command]
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments", command, "--help"],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout).strip().splitlines()
            problems.append(
                f"{wheres[0]}: 'python -m repro.experiments {command}' is not "
                f"a valid command ({detail[-1] if detail else 'no output'})"
            )
    return problems


def link_targets(text: str) -> Iterator[Tuple[int, str]]:
    """Yield (line number, relative target) per local markdown link,
    skipping fenced code blocks, external URLs and same-page anchors."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            yield lineno, target.split("#", 1)[0]


def check_links(path: Path, text: str) -> Tuple[List[str], List[Path]]:
    """Resolve every relative link; return (problems, linked files)."""
    problems: List[str] = []
    resolved: List[Path] = []
    for lineno, target in link_targets(text):
        candidate = (path.parent / target).resolve()
        if candidate.exists():
            resolved.append(candidate)
        else:
            problems.append(
                f"{path.relative_to(REPO_ROOT)}:{lineno}: broken link"
                f" ({target} does not exist)"
            )
    return problems, resolved


def check_reachability(linked_from: dict) -> List[str]:
    """Every docs/*.md page must be reachable from docs/README.md by
    following relative links (``linked_from`` maps each checked file to
    the files it links to)."""
    docs_dir = (REPO_ROOT / "docs").resolve()
    index = docs_dir / "README.md"
    if index not in linked_from:
        return []  # partial invocation (explicit FILE... args)
    reachable = set()
    frontier = [index]
    while frontier:
        page = frontier.pop()
        if page in reachable:
            continue
        reachable.add(page)
        frontier.extend(linked_from.get(page, []))
    return [
        f"docs/{page.name}: not reachable from docs/README.md"
        " (add it to the index table)"
        for page in sorted(docs_dir.glob("*.md"))
        if page.resolve() not in reachable
    ]


def check_file(path: Path) -> Tuple[List[str], List[Tuple[str, str]], int]:
    problems: List[str] = []
    commands: List[Tuple[str, str]] = []
    text = path.read_text(encoding="utf-8")
    blocks = 0
    for lang, block, lineno in fenced_blocks(text):
        blocks += 1
        where = f"{path.relative_to(REPO_ROOT)}:{lineno}"
        if lang == "python":
            problems.extend(check_python_block(block, where))
        commands.extend(
            (match.group(1), where) for match in CLI_RE.finditer(block)
        )
    return problems, commands, blocks


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        paths = [Path(arg).resolve() for arg in argv]
    else:
        paths = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]
    problems: List[str] = []
    commands: List[Tuple[str, str]] = []
    total_blocks = 0
    total_links = 0
    linked_from: dict = {}
    for path in paths:
        file_problems, file_commands, blocks = check_file(path)
        problems.extend(file_problems)
        commands.extend(file_commands)
        total_blocks += blocks
        link_problems, resolved = check_links(
            path, path.read_text(encoding="utf-8")
        )
        problems.extend(link_problems)
        total_links += len(resolved)
        linked_from[path.resolve()] = resolved
    problems.extend(check_cli_commands(commands))
    problems.extend(check_reachability(linked_from))
    unique_cmds = len({cmd for cmd, _ in commands})
    print(
        f"checked {len(paths)} files, {total_blocks} fenced blocks, "
        f"{unique_cmds} distinct CLI commands, {total_links} relative links"
    )
    for problem in problems:
        print(f"FAIL {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
