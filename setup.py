"""Setup shim.

Metadata lives in pyproject.toml; this file adds the *optional*
compiled engine core (``repro.sim._engine_core``).  The extension is
a pure accelerator — ``repro.sim.engine`` falls back to its pure-python
dispatch loop whenever the module is missing — so a failed build must
never fail the install.  Build it explicitly with:

    python setup.py build_ext --inplace

Set ``REPRO_REQUIRE_COMPILED=1`` to turn a build failure into a hard
error (the compiled-core CI leg does, so a silently broken toolchain
cannot masquerade as a passing run).
"""

import os

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Build the accelerator if we can; fall back quietly if we cannot."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # noqa: BLE001 - any toolchain failure
            self._tolerate(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # noqa: BLE001
            self._tolerate(exc)

    @staticmethod
    def _tolerate(exc):
        if os.environ.get("REPRO_REQUIRE_COMPILED", "").strip() not in ("", "0"):
            raise
        print(f"warning: skipping optional compiled core: {exc}")


setup(
    ext_modules=[
        Extension(
            "repro.sim._engine_core",
            sources=["src/repro/sim/_engine_core.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
