"""Setup shim.

Metadata lives in pyproject.toml; this file exists so the package can
be installed in environments whose pip/setuptools lack PEP 660 support
(e.g. offline boxes without the ``wheel`` package):

    python setup.py develop
"""

from setuptools import setup

setup()
